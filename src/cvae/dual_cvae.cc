#include "cvae/dual_cvae.h"

#include "tensor/ops.h"

namespace metadpa {
namespace cvae {
namespace {

/// Reparameterized sample z = mu + exp(0.5 * logvar) * eps.
ag::Variable Reparameterize(const ag::Variable& mu, const ag::Variable& logvar,
                            Rng* rng) {
  Tensor eps = Tensor::RandNormal(mu.shape(), rng);
  return ag::Add(mu, ag::Mul(ag::Exp(ag::MulScalar(logvar, 0.5f)),
                             ag::Constant(std::move(eps))));
}

/// Conditional KL of Eq. (3): 0.5 * mean_B sum_l
///   (sigma^2 + (mu - z^x)^2 - log sigma^2 - 1).
ag::Variable ConditionalKl(const ag::Variable& mu, const ag::Variable& logvar,
                           const ag::Variable& z_x) {
  ag::Variable var = ag::Exp(logvar);
  ag::Variable diff = ag::Sub(mu, z_x);
  ag::Variable per_dim = ag::Sub(ag::Add(var, ag::Mul(diff, diff)),
                                 ag::AddScalar(logvar, 1.0f));
  return ag::MulScalar(ag::MeanAll(ag::Sum(per_dim, 1, /*keepdims=*/false)), 0.5f);
}

}  // namespace

CvaeSide::CvaeSide(int64_t num_items, int64_t content_dim, int64_t hidden_dim,
                   int64_t latent_dim, Rng* rng)
    : enc_hidden_(num_items + content_dim, hidden_dim, rng, nn::Init::kHeNormal),
      enc_mu_(hidden_dim, latent_dim, rng),
      enc_logvar_(hidden_dim, latent_dim, rng, nn::Init::kZeros),
      content_hidden_(content_dim, hidden_dim, rng, nn::Init::kHeNormal),
      content_out_(hidden_dim, latent_dim, rng),
      dec_hidden_(latent_dim + content_dim, hidden_dim, rng, nn::Init::kHeNormal),
      dec_out_(hidden_dim, num_items, rng) {}

std::pair<ag::Variable, ag::Variable> CvaeSide::Encode(const ag::Variable& ratings,
                                                       const ag::Variable& content) const {
  ag::Variable h = ag::Relu(enc_hidden_.Forward(ag::ConcatCols({ratings, content})));
  return {enc_mu_.Forward(h), enc_logvar_.Forward(h)};
}

ag::Variable CvaeSide::EncodeContent(const ag::Variable& content) const {
  return content_out_.Forward(ag::Relu(content_hidden_.Forward(content)));
}

ag::Variable CvaeSide::DecodeLogits(const ag::Variable& z,
                                    const ag::Variable& content) const {
  ag::Variable h = ag::Relu(dec_hidden_.Forward(ag::ConcatCols({z, content})));
  return dec_out_.Forward(h);
}

nn::ParamList CvaeSide::Parameters() const {
  nn::ParamList params;
  for (const nn::Linear* layer : {&enc_hidden_, &enc_mu_, &enc_logvar_, &content_hidden_,
                                  &content_out_, &dec_hidden_, &dec_out_}) {
    nn::ParamList p = layer->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

DualCvae::DualCvae(const DualCvaeConfig& config, Rng* rng)
    : config_(config),
      source_(config.source_items, config.content_dim, config.hidden_dim,
              config.latent_dim, rng),
      target_(config.target_items, config.content_dim, config.hidden_dim,
              config.latent_dim, rng),
      mdi_critic_(config.latent_dim, config.latent_dim, config.latent_dim,
                  config.infonce_temperature, rng),
      me_critic_(config.source_items, config.target_items, config.latent_dim,
                 config.infonce_temperature, rng) {
  MDPA_CHECK_GT(config.source_items, 0);
  MDPA_CHECK_GT(config.target_items, 0);
  MDPA_CHECK_GT(config.content_dim, 0);
}

DualCvaeLosses DualCvae::ComputeLosses(const Tensor& r_s, const Tensor& x_s,
                                       const Tensor& r_t, const Tensor& x_t,
                                       Rng* rng) const {
  return ComputeLosses(ag::Constant(r_s), ag::Constant(x_s), ag::Constant(r_t),
                       ag::Constant(x_t), rng);
}

DualCvaeLosses DualCvae::ComputeLosses(const ag::Variable& vr_s,
                                       const ag::Variable& vx_s,
                                       const ag::Variable& vr_t,
                                       const ag::Variable& vx_t, Rng* rng) const {
  auto [mu_s, logvar_s] = source_.Encode(vr_s, vx_s);
  auto [mu_t, logvar_t] = target_.Encode(vr_t, vx_t);
  ag::Variable z_s = Reparameterize(mu_s, logvar_s, rng);
  ag::Variable z_t = Reparameterize(mu_t, logvar_t, rng);
  ag::Variable zx_s = source_.EncodeContent(vx_s);
  ag::Variable zx_t = target_.EncodeContent(vx_t);

  DualCvaeLosses losses;

  // Eq. (2): within-domain reconstruction (BCE, implicit feedback) ...
  ag::Variable logits_s = source_.DecodeLogits(z_s, vx_s);
  ag::Variable logits_t = target_.DecodeLogits(z_t, vx_t);
  losses.elbo_recon =
      ag::Add(ag::BceWithLogits(logits_s, vr_s), ag::BceWithLogits(logits_t, vr_t));

  // ... plus the conditional KL of Eq. (3).
  losses.kl = ag::Add(ConditionalKl(mu_s, logvar_s, zx_s),
                      ConditionalKl(mu_t, logvar_t, zx_t));

  // Eq. (4): align sampled latents with the content embeddings so that the
  // content-only path (E^x -> D) can reconstruct ratings at generation time.
  losses.mse_align = ag::Add(ag::MseLoss(z_s, zx_s), ag::MseLoss(z_t, zx_t));

  // Eq. (5): cross-domain reconstruction - decode each domain's ratings from
  // the OTHER domain's latent.
  ag::Variable cross_s = source_.DecodeLogits(z_t, vx_s);
  ag::Variable cross_t = target_.DecodeLogits(z_s, vx_t);
  losses.cross_recon =
      ag::Add(ag::BceWithLogits(cross_s, vr_s), ag::BceWithLogits(cross_t, vr_t));

  // Content-only path (the red generation path of Fig. 1): decode ratings
  // from the content embedding alone so block 2 generates faithful rows.
  ag::Variable content_logits_s = source_.DecodeLogits(zx_s, vx_s);
  ag::Variable content_logits_t = target_.DecodeLogits(zx_t, vx_t);
  losses.content_recon = ag::Add(ag::BceWithLogits(content_logits_s, vr_s),
                                 ag::BceWithLogits(content_logits_t, vr_t));

  // Eq. (6): MDI constraint, -I(z_s, z_t) via InfoNCE.
  losses.mdi = config_.use_mdi ? mdi_critic_.Loss(z_s, z_t)
                               : ag::ConstantScalar(0.0f);

  // Eq. (7): ME constraint, -I(r_hat_s, r_hat_t) on decoder outputs; ties the
  // target generation to this source's domain-specific patterns so different
  // Dual-CVAEs generate DIVERSE target ratings.
  losses.me = config_.use_me
                  ? me_critic_.Loss(ag::Sigmoid(logits_s), ag::Sigmoid(logits_t))
                  : ag::ConstantScalar(0.0f);

  // Eq. (8) plus the content-path term.
  losses.total = ag::Add(
      ag::Add(ag::Add(losses.elbo_recon, losses.kl),
              ag::Add(losses.mse_align, losses.cross_recon)),
      ag::Add(ag::MulScalar(losses.content_recon, config_.content_recon_weight),
              ag::Add(ag::MulScalar(losses.mdi, config_.beta1),
                      ag::MulScalar(losses.me, config_.beta2))));
  return losses;
}

Tensor DualCvae::GenerateTargetRatings(const Tensor& target_content) const {
  ag::Variable content = ag::Constant(target_content);
  ag::Variable z = target_.EncodeContent(content);
  ag::Variable logits = target_.DecodeLogits(z, content);
  return t::Sigmoid(logits.data());
}

nn::ParamList DualCvae::Parameters() const {
  nn::ParamList params = source_.Parameters();
  for (const nn::ParamList& extra :
       {target_.Parameters(), mdi_critic_.Parameters(), me_critic_.Parameters()}) {
    params.insert(params.end(), extra.begin(), extra.end());
  }
  return params;
}

}  // namespace cvae
}  // namespace metadpa
