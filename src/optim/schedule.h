// Learning-rate schedules. Stateless functions of the epoch index that
// trainers apply via Optimizer::set_lr.
#ifndef METADPA_OPTIM_SCHEDULE_H_
#define METADPA_OPTIM_SCHEDULE_H_

#include <functional>

#include "util/status.h"

namespace metadpa {
namespace optim {

/// \brief Maps an epoch index to a learning rate.
using LrSchedule = std::function<float(int epoch)>;

/// \brief Constant learning rate.
LrSchedule ConstantLr(float lr);

/// \brief Multiplies the base rate by `gamma` every `step_epochs`.
LrSchedule StepDecay(float base_lr, int step_epochs, float gamma);

/// \brief Cosine annealing from base_lr to min_lr over total_epochs.
LrSchedule CosineDecay(float base_lr, float min_lr, int total_epochs);

/// \brief Linear ramp from 0 to the wrapped schedule's value over
/// `warmup_epochs`, then the wrapped schedule.
LrSchedule WithWarmup(LrSchedule schedule, int warmup_epochs);

}  // namespace optim
}  // namespace metadpa

#endif  // METADPA_OPTIM_SCHEDULE_H_
