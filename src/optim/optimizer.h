// First-order optimizers. They pair a ParamList with gradients produced by
// ag::Grad and update the leaf data in place.
#ifndef METADPA_OPTIM_OPTIMIZER_H_
#define METADPA_OPTIM_OPTIMIZER_H_

#include <vector>

#include "nn/module.h"

namespace metadpa {
namespace optim {

/// \brief Base optimizer interface.
class Optimizer {
 public:
  /// \brief Registers the parameters to optimize.
  explicit Optimizer(nn::ParamList params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// \brief Applies one update given gradients aligned with the params.
  virtual void Step(const std::vector<ag::Variable>& grads) = 0;

  /// \brief Convenience: computes grads of `loss` w.r.t. the registered
  /// params and applies one update.
  void Step(const ag::Variable& loss);

  const nn::ParamList& params() const { return params_; }

 protected:
  nn::ParamList params_;
};

/// \brief Stochastic gradient descent with optional momentum and weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(nn::ParamList params, float lr, float momentum = 0.0f, float weight_decay = 0.0f);

  void Step(const std::vector<ag::Variable>& grads) override;
  using Optimizer::Step;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// \brief Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(nn::ParamList params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f);

  void Step(const std::vector<ag::Variable>& grads) override;
  using Optimizer::Step;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t step_count() const { return step_count_; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t step_count_ = 0;
  std::vector<Tensor> m_, v_;
};

/// \brief Scales gradients in place so their global L2 norm is at most
/// `max_norm`; returns the pre-clip norm.
float ClipGradNorm(std::vector<ag::Variable>* grads, float max_norm);

}  // namespace optim
}  // namespace metadpa

#endif  // METADPA_OPTIM_OPTIMIZER_H_
