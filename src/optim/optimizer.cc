#include "optim/optimizer.h"

#include <cmath>

#include "tensor/ops.h"

namespace metadpa {
namespace optim {

void Optimizer::Step(const ag::Variable& loss) {
  std::vector<ag::Variable> grads = ag::Grad(loss, params_);
  Step(grads);
}

Sgd::Sgd(nn::ParamList params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.push_back(Tensor::Zeros(p.shape()));
  }
}

void Sgd::Step(const std::vector<ag::Variable>& grads) {
  MDPA_CHECK_EQ(grads.size(), params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor g = grads[i].data();
    if (weight_decay_ > 0.0f) {
      g = t::Add(g, t::MulScalar(params_[i].data(), weight_decay_));
    }
    Tensor update;
    if (momentum_ > 0.0f) {
      velocity_[i] = t::Add(t::MulScalar(velocity_[i], momentum_), g);
      update = velocity_[i];
    } else {
      update = g;
    }
    ag::Variable p = params_[i];
    p.SetData(t::Sub(p.data(), t::MulScalar(update, lr_)));
  }
}

Adam::Adam(nn::ParamList params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::Zeros(p.shape()));
    v_.push_back(Tensor::Zeros(p.shape()));
  }
}

void Adam::Step(const std::vector<ag::Variable>& grads) {
  MDPA_CHECK_EQ(grads.size(), params_.size());
  ++step_count_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor g = grads[i].data();
    if (weight_decay_ > 0.0f) {
      g = t::Add(g, t::MulScalar(params_[i].data(), weight_decay_));
    }
    m_[i] = t::Add(t::MulScalar(m_[i], beta1_), t::MulScalar(g, 1.0f - beta1_));
    v_[i] = t::Add(t::MulScalar(v_[i], beta2_),
                   t::MulScalar(t::Mul(g, g), 1.0f - beta2_));
    Tensor m_hat = t::MulScalar(m_[i], 1.0f / bc1);
    Tensor v_hat = t::MulScalar(v_[i], 1.0f / bc2);
    Tensor update = t::Div(m_hat, t::AddScalar(t::Sqrt(v_hat), eps_));
    ag::Variable p = params_[i];
    p.SetData(t::Sub(p.data(), t::MulScalar(update, lr_)));
  }
}

float ClipGradNorm(std::vector<ag::Variable>* grads, float max_norm) {
  double sq = 0.0;
  for (const auto& g : *grads) {
    const Tensor& d = g.data();
    for (int64_t i = 0; i < d.numel(); ++i) sq += static_cast<double>(d.at(i)) * d.at(i);
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& g : *grads) {
      ag::Variable handle = g;
      handle.SetData(t::MulScalar(g.data(), scale));
    }
  }
  return norm;
}

}  // namespace optim
}  // namespace metadpa
