#include "optim/optimizer.h"

#include <cmath>

#include "tensor/ops.h"

namespace metadpa {
namespace optim {

void Optimizer::Step(const ag::Variable& loss) {
  std::vector<ag::Variable> grads = ag::Grad(loss, params_);
  Step(grads);
}

Sgd::Sgd(nn::ParamList params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.push_back(Tensor::Zeros(p.shape()));
  }
}

void Sgd::Step(const std::vector<ag::Variable>& grads) {
  MDPA_CHECK_EQ(grads.size(), params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable p = params_[i];
    Tensor pt = p.MutableData();
    const Tensor& gt = grads[i].data();
    MDPA_CHECK(SameShape(gt.shape(), pt.shape()));
    if (momentum_ == 0.0f && weight_decay_ == 0.0f) {
      t::AxpyInPlace(&pt, -lr_, gt);
      continue;
    }
    // Fused per-element update with the same arithmetic order as the
    // tensor-op formulation (g' = g + wd*p; v = v*mu + g'; p -= update*lr),
    // without allocating per-parameter temporaries.
    float* pp = pt.data();
    const float* pg = gt.data();
    float* pvel = momentum_ > 0.0f ? velocity_[i].data() : nullptr;
    const int64_t n = pt.numel();
    for (int64_t j = 0; j < n; ++j) {
      float g = pg[j];
      if (weight_decay_ > 0.0f) g = g + pp[j] * weight_decay_;
      if (pvel != nullptr) {
        pvel[j] = pvel[j] * momentum_ + g;
        g = pvel[j];
      }
      pp[j] -= g * lr_;
    }
  }
}

Adam::Adam(nn::ParamList params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::Zeros(p.shape()));
    v_.push_back(Tensor::Zeros(p.shape()));
  }
}

void Adam::Step(const std::vector<ag::Variable>& grads) {
  MDPA_CHECK_EQ(grads.size(), params_.size());
  ++step_count_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  const float inv_bc1 = 1.0f / bc1;
  const float inv_bc2 = 1.0f / bc2;
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable p = params_[i];
    Tensor pt = p.MutableData();
    const Tensor& gt = grads[i].data();
    MDPA_CHECK(SameShape(gt.shape(), pt.shape()));
    // One fused pass per parameter with the same per-element arithmetic as
    // the tensor-op formulation; the moment buffers and the parameter are
    // updated in place, so a step allocates nothing.
    float* pp = pt.data();
    const float* pg = gt.data();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    const int64_t n = pt.numel();
    for (int64_t j = 0; j < n; ++j) {
      float g = pg[j];
      if (weight_decay_ > 0.0f) g = g + pp[j] * weight_decay_;
      pm[j] = pm[j] * beta1_ + g * (1.0f - beta1_);
      pv[j] = pv[j] * beta2_ + (g * g) * (1.0f - beta2_);
      const float m_hat = pm[j] * inv_bc1;
      const float v_hat = pv[j] * inv_bc2;
      pp[j] -= (m_hat / (std::sqrt(v_hat) + eps_)) * lr_;
    }
  }
}

float ClipGradNorm(std::vector<ag::Variable>* grads, float max_norm) {
  double sq = 0.0;
  for (const auto& g : *grads) {
    const Tensor& d = g.data();
    for (int64_t i = 0; i < d.numel(); ++i) sq += static_cast<double>(d.at(i)) * d.at(i);
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& g : *grads) {
      ag::Variable handle = g;
      handle.SetData(t::MulScalar(g.data(), scale));
    }
  }
  return norm;
}

}  // namespace optim
}  // namespace metadpa
