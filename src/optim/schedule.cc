#include "optim/schedule.h"

#include <cmath>

namespace metadpa {
namespace optim {

LrSchedule ConstantLr(float lr) {
  return [lr](int) { return lr; };
}

LrSchedule StepDecay(float base_lr, int step_epochs, float gamma) {
  MDPA_CHECK_GT(step_epochs, 0);
  return [base_lr, step_epochs, gamma](int epoch) {
    return base_lr * std::pow(gamma, static_cast<float>(epoch / step_epochs));
  };
}

LrSchedule CosineDecay(float base_lr, float min_lr, int total_epochs) {
  MDPA_CHECK_GT(total_epochs, 0);
  MDPA_CHECK_LE(min_lr, base_lr);
  return [base_lr, min_lr, total_epochs](int epoch) {
    if (epoch >= total_epochs) return min_lr;
    const float progress = static_cast<float>(epoch) / static_cast<float>(total_epochs);
    return min_lr +
           0.5f * (base_lr - min_lr) * (1.0f + std::cos(progress * 3.14159265f));
  };
}

LrSchedule WithWarmup(LrSchedule schedule, int warmup_epochs) {
  MDPA_CHECK_GE(warmup_epochs, 0);
  return [schedule = std::move(schedule), warmup_epochs](int epoch) {
    const float base = schedule(epoch);
    if (warmup_epochs == 0 || epoch >= warmup_epochs) return base;
    return base * static_cast<float>(epoch + 1) / static_cast<float>(warmup_epochs);
  };
}

}  // namespace optim
}  // namespace metadpa
