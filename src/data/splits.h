// Scenario construction for the four recommendation problems of §III-A:
// Warm-start, C-U (cold user), C-I (cold item), C-UI (cold user & item),
// plus the paper's leave-one-out evaluation protocol with sampled negatives.
#ifndef METADPA_DATA_SPLITS_H_
#define METADPA_DATA_SPLITS_H_

#include <string>
#include <utility>
#include <vector>

#include "data/synthetic.h"

namespace metadpa {
namespace data {

/// \brief The four evaluation scenarios.
enum class Scenario { kWarm, kColdUser, kColdItem, kColdUserItem };

const char* ScenarioName(Scenario scenario);

/// \brief One leave-one-out test case: rank `test_positive` against
/// `negatives` for `user`.
struct EvalCase {
  int64_t user = -1;
  /// The held-out positive item.
  int64_t test_positive = -1;
  /// Sampled unobserved items (paper: 99 per positive).
  std::vector<int64_t> negatives;
  /// This user's remaining positive items within the scenario (support set for
  /// per-task adaptation; may be empty).
  std::vector<int64_t> support_items;
};

/// \brief One scenario's fine-tuning pool and test cases.
struct ScenarioData {
  Scenario scenario = Scenario::kWarm;
  /// All support (user, item) positives for this scenario, across users.
  std::vector<std::pair<int64_t, int64_t>> support;
  std::vector<EvalCase> cases;
};

/// \brief All splits derived from one target domain.
struct DatasetSplits {
  /// U_e / U_n / I_e / I_n of §III-A (>= 5 ratings = existing).
  std::vector<int64_t> existing_users;
  std::vector<int64_t> new_users;
  std::vector<int64_t> existing_items;
  std::vector<int64_t> new_items;
  std::vector<int64_t> all_items;

  /// R_w minus the warm held-out positives; the only ratings any model may
  /// train on. Cold support ratings are NOT in here.
  InteractionMatrix train;

  ScenarioData warm;
  ScenarioData cold_user;
  ScenarioData cold_item;
  ScenarioData cold_ui;

  const ScenarioData& ForScenario(Scenario scenario) const;

  /// Candidate item pool negatives are drawn from: I_e for Warm/C-U (the
  /// recommendable catalogue of those scenarios), the full item set for
  /// C-I/C-UI (a held-out NEW item is ranked against unobserved items at
  /// large, as in the usual leave-one-out protocol — I_n alone is far smaller
  /// than the 99 negatives the protocol needs).
  const std::vector<int64_t>& CandidateItems(Scenario scenario) const;
};

/// \brief Options for split construction.
struct SplitOptions {
  int num_negatives = 99;
  /// Threshold separating existing from new users/items (paper: 5).
  int64_t existing_threshold = 5;
  uint64_t seed = 7;
};

/// \brief Builds all four scenarios from a domain.
DatasetSplits MakeSplits(const DomainData& domain, const SplitOptions& options);

/// \brief Flat binary training examples drawn from an interaction matrix:
/// every positive plus `negatives_per_positive` sampled negatives.
struct LabeledExamples {
  std::vector<int64_t> users;
  std::vector<int64_t> items;
  std::vector<float> labels;
  size_t size() const { return users.size(); }
};

LabeledExamples SampleTrainingExamples(const InteractionMatrix& ratings,
                                       int negatives_per_positive, Rng* rng);

}  // namespace data
}  // namespace metadpa

#endif  // METADPA_DATA_SPLITS_H_
