// File-based dataset I/O.
//
// The synthetic generator stands in for the Amazon dumps, but a downstream
// user with the real data can export it to the simple formats here and run
// every experiment unchanged:
//   * interactions: one "user<TAB>item" pair per line (0-based ids),
//   * content matrices: the binary tensor format of tensor/serialize.h.
#ifndef METADPA_DATA_IO_H_
#define METADPA_DATA_IO_H_

#include <string>

#include "data/synthetic.h"
#include "util/status.h"

namespace metadpa {
namespace data {

/// \brief Writes interactions as "user\titem" lines.
Status SaveInteractions(const std::string& path, const InteractionMatrix& matrix);

/// \brief Reads "user\titem" lines; `num_users`/`num_items` of 0 means infer
/// them as (max id + 1). Blank lines and lines starting with '#' are skipped.
Result<InteractionMatrix> LoadInteractions(const std::string& path,
                                           int64_t num_users = 0, int64_t num_items = 0);

/// \brief Saves a full domain (ratings + both content matrices) under
/// `prefix` as prefix.ratings.tsv / prefix.content.bin.
Status SaveDomain(const std::string& prefix, const DomainData& domain);

/// \brief Loads a domain saved by SaveDomain.
Result<DomainData> LoadDomain(const std::string& prefix, const std::string& name);

}  // namespace data
}  // namespace metadpa

#endif  // METADPA_DATA_IO_H_
