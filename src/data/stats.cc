#include "data/stats.h"

#include <sstream>

#include "util/table.h"

namespace metadpa {
namespace data {

DomainStats ComputeStats(const DomainData& domain) {
  DomainStats stats;
  stats.name = domain.name;
  stats.num_users = domain.num_users();
  stats.num_items = domain.num_items();
  stats.num_ratings = domain.ratings.NumRatings();
  stats.sparsity = domain.ratings.Sparsity();
  return stats;
}

std::string RenderDatasetTables(const MultiDomainDataset& dataset) {
  std::ostringstream out;

  TextTable sources;
  sources.SetHeader({"Source (S)", "#shared users (" + dataset.target.name + ")",
                     "#users", "#items", "#ratings", "sparsity"});
  for (size_t s = 0; s < dataset.sources.size(); ++s) {
    const DomainStats st = ComputeStats(dataset.sources[s]);
    sources.AddRow({st.name, std::to_string(dataset.shared_users[s].size()),
                    std::to_string(st.num_users), std::to_string(st.num_items),
                    std::to_string(st.num_ratings),
                    TextTable::Num(st.sparsity * 100.0, 2) + "%"});
  }
  out << "Table I: source domain statistics\n" << sources.ToString() << '\n';

  TextTable targets;
  targets.SetHeader({"Dataset", "#users", "#items", "#ratings", "sparsity"});
  const DomainStats st = ComputeStats(dataset.target);
  targets.AddRow({st.name, std::to_string(st.num_users), std::to_string(st.num_items),
                  std::to_string(st.num_ratings),
                  TextTable::Num(st.sparsity * 100.0, 2) + "%"});
  out << "Table II: target domain statistics\n" << targets.ToString();
  return out.str();
}

}  // namespace data
}  // namespace metadpa
