// Synthetic multi-domain implicit-feedback data.
//
// Stands in for the paper's Amazon review datasets (see DESIGN.md,
// "Substitutions"). The generator plants exactly the structure MetaDPA
// exploits:
//   * user latent preferences with a domain-SHARED part (carried by users that
//     appear in several domains) and a domain-SPECIFIC part,
//   * review-like bag-of-words content that correlates with — but does not
//     determine — preferences (the content/preference gap of §I),
//   * power-law item popularity and >=99% sparsity,
//   * cold users/items (< 5 ratings, §III-A) for the C-U / C-I / C-UI splits.
#ifndef METADPA_DATA_SYNTHETIC_H_
#define METADPA_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "data/interactions.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace metadpa {
namespace data {

/// \brief One domain's observable data.
struct DomainData {
  std::string name;
  InteractionMatrix ratings;
  /// Row-normalized bag-of-words per item, shape (num_items, vocab).
  Tensor item_content;
  /// Row-normalized bag-of-words per user (aggregated from rated items'
  /// content, like review text), shape (num_users, vocab).
  Tensor user_content;

  int64_t num_users() const { return ratings.num_users(); }
  int64_t num_items() const { return ratings.num_items(); }
};

/// \brief Per-domain size knobs.
struct DomainSpec {
  std::string name;
  int64_t num_users = 300;
  int64_t num_items = 200;
  /// Fraction of users that are cold (2-4 interactions).
  double cold_user_fraction = 0.25;
  /// Mean interactions for existing (non-cold) users.
  double mean_interactions = 14.0;
  /// Fraction of the TARGET's users that also live in this SOURCE domain
  /// (ignored for target specs).
  double shared_user_fraction = 0.3;
};

/// \brief Generator configuration.
struct SyntheticConfig {
  uint64_t seed = 42;
  int64_t vocab_size = 96;
  int64_t latent_shared = 8;    ///< dims carried across domains by shared users
  int64_t latent_specific = 4;  ///< per-domain private dims
  /// Softmax temperature when sampling items by affinity; higher = more
  /// preference-driven, lower = more popularity-driven.
  double affinity_temperature = 1.2;
  /// Strength of the popularity (Zipf-like) bias.
  double popularity_weight = 0.8;
  /// Noise level in content generation (the content-preference gap).
  double content_noise = 0.4;

  std::vector<DomainSpec> sources;
  DomainSpec target;
};

/// \brief A generated multi-domain world: k source domains plus one target,
/// with explicit shared-user alignment.
struct MultiDomainDataset {
  std::vector<DomainData> sources;
  DomainData target;
  /// shared_users[s] lists (source_user_index, target_user_index) pairs for
  /// users present in both source s and the target.
  std::vector<std::vector<std::pair<int64_t, int64_t>>> shared_users;
};

/// \brief Default configuration mirroring the paper's 3-source setup
/// (Electronics-, Movies-, Music-like) at laptop scale. `scale` multiplies
/// all user/item counts (used by the Fig. 6 scalability sweep).
SyntheticConfig DefaultConfig(const std::string& target_name = "Books", double scale = 1.0);

/// \brief Generates the full multi-domain dataset.
MultiDomainDataset Generate(const SyntheticConfig& config);

}  // namespace data
}  // namespace metadpa

#endif  // METADPA_DATA_SYNTHETIC_H_
