// Sparse implicit-feedback interaction matrix.
#ifndef METADPA_DATA_INTERACTIONS_H_
#define METADPA_DATA_INTERACTIONS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace metadpa {
namespace data {

/// \brief Sparse binary user-item interactions stored as per-user sorted item
/// lists. r_ui = 1 iff the user interacted with the item (paper §III-A).
class InteractionMatrix {
 public:
  InteractionMatrix() : num_users_(0), num_items_(0) {}
  InteractionMatrix(int64_t num_users, int64_t num_items);

  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }

  /// \brief Records an interaction (idempotent).
  void Add(int64_t user, int64_t item);

  /// \brief Removes an interaction if present; returns whether it existed.
  bool Remove(int64_t user, int64_t item);

  /// \brief O(log n) membership test.
  bool Has(int64_t user, int64_t item) const;

  /// \brief Sorted item ids the user interacted with.
  const std::vector<int32_t>& ItemsOf(int64_t user) const;

  /// \brief Number of interactions of one user.
  int64_t Degree(int64_t user) const { return static_cast<int64_t>(ItemsOf(user).size()); }

  /// \brief Number of users who interacted with the item.
  int64_t ItemDegree(int64_t item) const;

  /// \brief Total interaction count.
  int64_t NumRatings() const;

  /// \brief 1 - ratings / (users * items), the paper's sparsity statistic.
  double Sparsity() const;

  /// \brief Dense 0/1 row for one user, shape (num_items).
  Tensor DenseRow(int64_t user) const;

  /// \brief Dense 0/1 matrix for a set of users, shape (|users|, num_items).
  Tensor DenseRows(const std::vector<int64_t>& users) const;

 private:
  int64_t num_users_;
  int64_t num_items_;
  std::vector<std::vector<int32_t>> user_items_;
  std::vector<int64_t> item_degree_;
};

}  // namespace data
}  // namespace metadpa

#endif  // METADPA_DATA_INTERACTIONS_H_
