#include "data/splits.h"

#include <algorithm>
#include <unordered_set>

#include "util/status.h"

namespace metadpa {
namespace data {

const char* ScenarioName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kWarm:
      return "Warm-start";
    case Scenario::kColdUser:
      return "C-U";
    case Scenario::kColdItem:
      return "C-I";
    case Scenario::kColdUserItem:
      return "C-UI";
  }
  return "?";
}

const ScenarioData& DatasetSplits::ForScenario(Scenario scenario) const {
  switch (scenario) {
    case Scenario::kWarm:
      return warm;
    case Scenario::kColdUser:
      return cold_user;
    case Scenario::kColdItem:
      return cold_item;
    case Scenario::kColdUserItem:
      return cold_ui;
  }
  return warm;
}

const std::vector<int64_t>& DatasetSplits::CandidateItems(Scenario scenario) const {
  switch (scenario) {
    case Scenario::kWarm:
    case Scenario::kColdUser:
      return existing_items;
    case Scenario::kColdItem:
    case Scenario::kColdUserItem:
      return all_items;
  }
  return existing_items;
}

namespace {

std::vector<int64_t> SampleNegatives(const InteractionMatrix& all, int64_t user,
                                     const std::vector<int64_t>& candidates, int count,
                                     Rng* rng) {
  std::vector<int64_t> negatives;
  negatives.reserve(static_cast<size_t>(count));
  std::unordered_set<int64_t> used;
  // Candidate pools are much larger than the per-user history at the sizes we
  // generate, so rejection sampling terminates quickly.
  int attempts = 0;
  const int max_attempts = count * 200;
  while (static_cast<int>(negatives.size()) < count && attempts++ < max_attempts) {
    const int64_t item =
        candidates[static_cast<size_t>(rng->UniformInt(candidates.size()))];
    if (all.Has(user, item) || used.count(item)) continue;
    used.insert(item);
    negatives.push_back(item);
  }
  return negatives;
}

}  // namespace

DatasetSplits MakeSplits(const DomainData& domain, const SplitOptions& options) {
  Rng rng(options.seed);
  const InteractionMatrix& all = domain.ratings;
  const int64_t n = all.num_users();
  const int64_t m = all.num_items();

  DatasetSplits splits;
  for (int64_t u = 0; u < n; ++u) {
    (all.Degree(u) >= options.existing_threshold ? splits.existing_users
                                                 : splits.new_users)
        .push_back(u);
  }
  for (int64_t i = 0; i < m; ++i) {
    (all.ItemDegree(i) >= options.existing_threshold ? splits.existing_items
                                                     : splits.new_items)
        .push_back(i);
    splits.all_items.push_back(i);
  }
  std::unordered_set<int64_t> new_item_set(splits.new_items.begin(),
                                           splits.new_items.end());
  std::unordered_set<int64_t> new_user_set(splits.new_users.begin(),
                                           splits.new_users.end());

  splits.warm.scenario = Scenario::kWarm;
  splits.cold_user.scenario = Scenario::kColdUser;
  splits.cold_item.scenario = Scenario::kColdItem;
  splits.cold_ui.scenario = Scenario::kColdUserItem;

  // Warm training matrix: existing users x existing items.
  splits.train = InteractionMatrix(n, m);
  for (int64_t u : splits.existing_users) {
    for (int32_t item : all.ItemsOf(u)) {
      if (!new_item_set.count(item)) splits.train.Add(u, item);
    }
  }

  // ---- Warm-start: hold out one existing-item positive per existing user.
  for (int64_t u : splits.existing_users) {
    std::vector<int64_t> warm_positives;
    for (int32_t item : all.ItemsOf(u)) {
      if (!new_item_set.count(item)) warm_positives.push_back(item);
    }
    if (warm_positives.size() < 2) continue;
    const int64_t held =
        warm_positives[static_cast<size_t>(rng.UniformInt(warm_positives.size()))];
    EvalCase c;
    c.user = u;
    c.test_positive = held;
    c.negatives =
        SampleNegatives(all, u, splits.existing_items, options.num_negatives, &rng);
    for (int64_t item : warm_positives) {
      if (item != held) c.support_items.push_back(item);
    }
    if (static_cast<int>(c.negatives.size()) < options.num_negatives) continue;
    splits.train.Remove(u, held);
    splits.warm.cases.push_back(std::move(c));
  }

  // Helper shared by the three cold scenarios.
  auto build_cold = [&](ScenarioData* scenario, bool users_are_new, bool items_are_new) {
    const std::vector<int64_t>& pool =
        items_are_new ? splits.all_items : splits.existing_items;
    for (int64_t u = 0; u < n; ++u) {
      const bool u_is_new = new_user_set.count(u) > 0;
      if (u_is_new != users_are_new) continue;
      std::vector<int64_t> positives;
      for (int32_t item : all.ItemsOf(u)) {
        const bool i_is_new = new_item_set.count(item) > 0;
        if (i_is_new == items_are_new) positives.push_back(item);
      }
      if (positives.empty()) continue;
      if (positives.size() == 1) {
        // Only a support rating: contributes to fine-tuning, not to testing.
        scenario->support.emplace_back(u, positives[0]);
        continue;
      }
      const int64_t held =
          positives[static_cast<size_t>(rng.UniformInt(positives.size()))];
      EvalCase c;
      c.user = u;
      c.test_positive = held;
      c.negatives = SampleNegatives(all, u, pool, options.num_negatives, &rng);
      if (static_cast<int>(c.negatives.size()) < options.num_negatives) {
        for (int64_t item : positives) scenario->support.emplace_back(u, item);
        continue;
      }
      for (int64_t item : positives) {
        if (item == held) continue;
        c.support_items.push_back(item);
        scenario->support.emplace_back(u, item);
      }
      scenario->cases.push_back(std::move(c));
    }
  };

  build_cold(&splits.cold_user, /*users_are_new=*/true, /*items_are_new=*/false);
  build_cold(&splits.cold_item, /*users_are_new=*/false, /*items_are_new=*/true);
  build_cold(&splits.cold_ui, /*users_are_new=*/true, /*items_are_new=*/true);
  return splits;
}

LabeledExamples SampleTrainingExamples(const InteractionMatrix& ratings,
                                       int negatives_per_positive, Rng* rng) {
  LabeledExamples out;
  const int64_t m = ratings.num_items();
  MDPA_CHECK_GT(m, 0);
  for (int64_t u = 0; u < ratings.num_users(); ++u) {
    const auto& items = ratings.ItemsOf(u);
    for (int32_t item : items) {
      out.users.push_back(u);
      out.items.push_back(item);
      out.labels.push_back(1.0f);
      for (int k = 0; k < negatives_per_positive; ++k) {
        // Rejection-sample an unobserved item.
        for (int attempt = 0; attempt < 64; ++attempt) {
          const int64_t neg = static_cast<int64_t>(rng->UniformInt(m));
          if (!ratings.Has(u, neg)) {
            out.users.push_back(u);
            out.items.push_back(neg);
            out.labels.push_back(0.0f);
            break;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace data
}  // namespace metadpa
