// Dataset statistics in the format of the paper's Tables I and II.
#ifndef METADPA_DATA_STATS_H_
#define METADPA_DATA_STATS_H_

#include <string>

#include "data/synthetic.h"

namespace metadpa {
namespace data {

/// \brief Per-domain summary (Table II columns).
struct DomainStats {
  std::string name;
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_ratings = 0;
  double sparsity = 0.0;
};

DomainStats ComputeStats(const DomainData& domain);

/// \brief Renders Table I (sources with shared-user counts) and Table II
/// (targets) for a generated dataset.
std::string RenderDatasetTables(const MultiDomainDataset& dataset);

}  // namespace data
}  // namespace metadpa

#endif  // METADPA_DATA_STATS_H_
