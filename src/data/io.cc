#include "data/io.h"

#include <cstdio>
#include <memory>

#include "tensor/serialize.h"

namespace metadpa {
namespace data {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status SaveInteractions(const std::string& path, const InteractionMatrix& matrix) {
  FilePtr file(std::fopen(path.c_str(), "w"));
  if (file == nullptr) return Status::IoError("cannot open for writing: " + path);
  std::fprintf(file.get(), "# users=%lld items=%lld\n",
               static_cast<long long>(matrix.num_users()),
               static_cast<long long>(matrix.num_items()));
  for (int64_t u = 0; u < matrix.num_users(); ++u) {
    for (int32_t item : matrix.ItemsOf(u)) {
      std::fprintf(file.get(), "%lld\t%d\n", static_cast<long long>(u), item);
    }
  }
  return Status::OK();
}

Result<InteractionMatrix> LoadInteractions(const std::string& path, int64_t num_users,
                                           int64_t num_items) {
  FilePtr file(std::fopen(path.c_str(), "r"));
  if (file == nullptr) return Status::NotFound("cannot open: " + path);

  std::vector<std::pair<int64_t, int64_t>> pairs;
  int64_t max_user = -1, max_item = -1;
  char line[256];
  int64_t line_no = 0;
  while (std::fgets(line, sizeof(line), file.get()) != nullptr) {
    ++line_no;
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\0') continue;
    long long user = 0, item = 0;
    if (std::sscanf(line, "%lld\t%lld", &user, &item) != 2 &&
        std::sscanf(line, "%lld %lld", &user, &item) != 2) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": expected 'user<TAB>item'");
    }
    if (user < 0 || item < 0) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": negative id");
    }
    pairs.emplace_back(user, item);
    max_user = std::max<int64_t>(max_user, user);
    max_item = std::max<int64_t>(max_item, item);
  }
  if (num_users == 0) num_users = max_user + 1;
  if (num_items == 0) num_items = max_item + 1;
  if (max_user >= num_users || max_item >= num_items) {
    return Status::OutOfRange("interaction ids exceed the declared matrix size");
  }
  InteractionMatrix matrix(num_users, num_items);
  for (const auto& [user, item] : pairs) matrix.Add(user, item);
  return matrix;
}

Status SaveDomain(const std::string& prefix, const DomainData& domain) {
  MDPA_RETURN_NOT_OK(SaveInteractions(prefix + ".ratings.tsv", domain.ratings));
  return t::SaveTensors(prefix + ".content.bin",
                        {domain.user_content, domain.item_content});
}

Result<DomainData> LoadDomain(const std::string& prefix, const std::string& name) {
  Result<std::vector<Tensor>> content = t::LoadTensors(prefix + ".content.bin");
  if (!content.ok()) return content.status();
  if (content.ValueOrDie().size() != 2) {
    return Status::InvalidArgument("domain content file must hold exactly 2 tensors");
  }
  DomainData domain;
  domain.name = name;
  domain.user_content = content.ValueOrDie()[0];
  domain.item_content = content.ValueOrDie()[1];
  Result<InteractionMatrix> ratings =
      LoadInteractions(prefix + ".ratings.tsv", domain.user_content.dim(0),
                       domain.item_content.dim(0));
  if (!ratings.ok()) return ratings.status();
  domain.ratings = ratings.MoveValueOrDie();
  if (domain.user_content.dim(1) != domain.item_content.dim(1)) {
    return Status::InvalidArgument("user/item content vocabularies differ");
  }
  return domain;
}

}  // namespace data
}  // namespace metadpa
