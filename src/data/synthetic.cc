#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/ops.h"
#include "util/status.h"

namespace metadpa {
namespace data {
namespace {

/// Topic-term matrix: each latent dimension owns a block of the vocabulary
/// plus diffuse mass, so content is informative about latents but overlapping.
Tensor MakeTopics(int64_t latent_dim, int64_t vocab, Rng* rng) {
  Tensor topics({latent_dim, vocab}, 0.02f);
  const int64_t block = std::max<int64_t>(1, vocab / latent_dim);
  for (int64_t k = 0; k < latent_dim; ++k) {
    const int64_t lo = (k * block) % vocab;
    for (int64_t j = 0; j < block; ++j) {
      const int64_t term = (lo + j) % vocab;
      topics.at(k, term) += static_cast<float>(rng->Uniform(0.5, 1.5));
    }
  }
  return topics;
}

void L2NormalizeRows(Tensor* m) {
  const int64_t rows = m->dim(0), cols = m->dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    double sq = 0.0;
    for (int64_t c = 0; c < cols; ++c) sq += static_cast<double>(m->at(r, c)) * m->at(r, c);
    const float inv = sq > 0 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
    for (int64_t c = 0; c < cols; ++c) m->at(r, c) *= inv;
  }
}

struct DomainLatents {
  Tensor users;  // (n, d)
  Tensor items;  // (m, d)
  std::vector<double> popularity;  // additive log-bias per item
};

/// Samples `count` distinct items for one user, proportional to
/// exp(temperature * affinity + popularity).
std::vector<int64_t> SampleItemsForUser(const DomainLatents& lat, int64_t user,
                                        const std::vector<int64_t>& candidates,
                                        int64_t count, double temperature, Rng* rng) {
  const int64_t d = lat.users.dim(1);
  std::vector<double> weights(candidates.size());
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(d));
  for (size_t c = 0; c < candidates.size(); ++c) {
    const int64_t item = candidates[c];
    double dot = 0.0;
    for (int64_t k = 0; k < d; ++k) {
      dot += static_cast<double>(lat.users.at(user, k)) * lat.items.at(item, k);
    }
    weights[c] = std::exp(temperature * dot * inv_sqrt_d + lat.popularity[item]);
  }
  std::vector<int64_t> chosen;
  chosen.reserve(static_cast<size_t>(count));
  for (int64_t pick = 0; pick < count && pick < static_cast<int64_t>(candidates.size());
       ++pick) {
    const size_t idx = rng->Categorical(weights);
    chosen.push_back(candidates[idx]);
    weights[idx] = 0.0;  // without replacement
  }
  return chosen;
}

/// Builds item content from latents: nonneg(latent) x topics + noise, L2 rows.
Tensor MakeItemContent(const Tensor& item_latents, const Tensor& topics, double noise,
                       Rng* rng) {
  const int64_t m = item_latents.dim(0);
  const int64_t vocab = topics.dim(1);
  // Nonnegative activation of latents so topic mixing weights are positive.
  Tensor act = t::AddScalar(t::Relu(item_latents), 0.05f);
  Tensor content = t::MatMul(act, topics);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < vocab; ++j) {
      content.at(i, j) += static_cast<float>(noise * std::fabs(rng->Normal()));
    }
  }
  L2NormalizeRows(&content);
  return content;
}

/// User content aggregated from reviews. Real review text only partially
/// reflects preferences (the content-preference gap of §I): users review only
/// SOME of the items they consume, and the text carries off-topic mass. We
/// model that by aggregating a random ~60% subset of the rated items' content
/// and adding substantial diffuse noise.
Tensor MakeUserContent(const InteractionMatrix& ratings, const Tensor& item_content,
                       double noise, Rng* rng) {
  const int64_t n = ratings.num_users();
  const int64_t vocab = item_content.dim(1);
  Tensor content({n, vocab}, 0.0f);
  for (int64_t u = 0; u < n; ++u) {
    const auto& items = ratings.ItemsOf(u);
    bool any = false;
    for (int32_t item : items) {
      if (!items.empty() && rng->Uniform() > 0.6) continue;  // unreviewed item
      any = true;
      for (int64_t j = 0; j < vocab; ++j) content.at(u, j) += item_content.at(item, j);
    }
    if (!any && !items.empty()) {
      const int32_t item = items[rng->UniformInt(items.size())];
      for (int64_t j = 0; j < vocab; ++j) content.at(u, j) += item_content.at(item, j);
    }
    for (int64_t j = 0; j < vocab; ++j) {
      content.at(u, j) += static_cast<float>(noise * std::fabs(rng->Normal()) * 0.6);
    }
  }
  L2NormalizeRows(&content);
  return content;
}

/// Zipf-like additive log-popularity, shuffled over item ids.
std::vector<double> MakePopularity(int64_t m, double weight, Rng* rng) {
  std::vector<double> raw(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    raw[static_cast<size_t>(i)] = 1.0 / std::pow(static_cast<double>(i + 1), 0.7);
  }
  rng->Shuffle(&raw);
  double mean = std::accumulate(raw.begin(), raw.end(), 0.0) / static_cast<double>(m);
  std::vector<double> bias(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    bias[static_cast<size_t>(i)] = weight * std::log(raw[static_cast<size_t>(i)] / mean);
  }
  return bias;
}

/// Generates one domain given pre-built user latents.
DomainData GenerateDomain(const DomainSpec& spec, const SyntheticConfig& config,
                          Tensor user_latents, const Tensor& topics, Rng* rng) {
  const int64_t n = spec.num_users;
  const int64_t m = spec.num_items;
  const int64_t d = config.latent_shared + config.latent_specific;
  MDPA_CHECK_EQ(user_latents.dim(0), n);
  MDPA_CHECK_EQ(user_latents.dim(1), d);

  DomainLatents lat;
  lat.users = std::move(user_latents);
  lat.items = Tensor::RandNormal({m, d}, rng);
  lat.popularity = MakePopularity(m, config.popularity_weight, rng);

  // Item partition: the low-popularity tail fifth becomes the "cold" items
  // that receive only 2-4 ratings (they are the C-I / C-UI test items).
  const int64_t num_cold_items = m / 5;
  std::vector<int64_t> all_items(static_cast<size_t>(m));
  std::iota(all_items.begin(), all_items.end(), 0);
  std::sort(all_items.begin(), all_items.end(), [&lat](int64_t a, int64_t b) {
    return lat.popularity[a] > lat.popularity[b];
  });
  std::vector<int64_t> warm_items(all_items.begin(), all_items.end() - num_cold_items);
  std::vector<int64_t> cold_items(all_items.end() - num_cold_items, all_items.end());

  // User partition: cold ("new", §III-A) users end with < 5 total ratings,
  // existing users with >= 5. Half of the cold users additionally rate cold
  // items so the C-UI scenario has test cases; they get exactly 2 warm
  // ratings to stay below the threshold after their 2 cold-item ratings.
  std::vector<bool> is_cold_user(static_cast<size_t>(n), false);
  std::vector<bool> rates_cold_items(static_cast<size_t>(n), false);
  const int64_t num_cold_users =
      static_cast<int64_t>(std::llround(spec.cold_user_fraction * static_cast<double>(n)));
  {
    auto picks = rng->SampleWithoutReplacement(static_cast<size_t>(n),
                                               static_cast<size_t>(num_cold_users));
    for (size_t i = 0; i < picks.size(); ++i) {
      is_cold_user[picks[i]] = true;
      if (i % 2 == 0) rates_cold_items[picks[i]] = true;
    }
  }
  // A slice of the existing users rates cold items too (the C-I cases).
  {
    std::vector<int64_t> existing;
    for (int64_t u = 0; u < n; ++u) {
      if (!is_cold_user[static_cast<size_t>(u)]) existing.push_back(u);
    }
    const size_t want = std::min(existing.size(),
                                 static_cast<size_t>(cold_items.size()));
    auto picks = rng->SampleWithoutReplacement(existing.size(), want);
    for (size_t p : picks) rates_cold_items[static_cast<size_t>(existing[p])] = true;
  }

  InteractionMatrix ratings(n, m);
  for (int64_t u = 0; u < n; ++u) {
    int64_t count;
    if (is_cold_user[static_cast<size_t>(u)]) {
      count = rates_cold_items[static_cast<size_t>(u)]
                  ? 2
                  : 2 + static_cast<int64_t>(rng->UniformInt(3));  // 2..4
    } else {
      const double extra = -std::log(1.0 - rng->Uniform()) * (spec.mean_interactions - 5.0);
      count = 5 + static_cast<int64_t>(std::llround(extra));
      count = std::min<int64_t>(count, static_cast<int64_t>(warm_items.size()) / 2);
    }
    for (int64_t item : SampleItemsForUser(lat, u, warm_items, count,
                                           config.affinity_temperature, rng)) {
      ratings.Add(u, item);
    }
  }

  // Cold items receive ratings in per-user bundles of 2-3 so both C-I
  // (existing user, >= 2 cold-item ratings) and C-UI (new user, exactly 2)
  // test cases exist. Each cold item is capped at 4 ratings to stay "new".
  std::vector<int64_t> capacity(static_cast<size_t>(m), 0);
  for (int64_t item : cold_items) capacity[static_cast<size_t>(item)] = 4;
  for (int64_t u = 0; u < n; ++u) {
    if (!rates_cold_items[static_cast<size_t>(u)]) continue;
    const int64_t want =
        is_cold_user[static_cast<size_t>(u)]
            ? 2
            : 2 + static_cast<int64_t>(rng->UniformInt(2));  // 2..3
    std::vector<int64_t> available;
    for (int64_t item : cold_items) {
      if (capacity[static_cast<size_t>(item)] > 0) available.push_back(item);
    }
    if (static_cast<int64_t>(available.size()) < want) continue;
    for (int64_t item : SampleItemsForUser(lat, u, available, want,
                                           config.affinity_temperature, rng)) {
      ratings.Add(u, item);
      --capacity[static_cast<size_t>(item)];
    }
  }

  DomainData out;
  out.name = spec.name;
  out.item_content = MakeItemContent(lat.items, topics, config.content_noise, rng);
  out.user_content = MakeUserContent(ratings, out.item_content, config.content_noise, rng);
  out.ratings = std::move(ratings);
  return out;
}

}  // namespace

SyntheticConfig DefaultConfig(const std::string& target_name, double scale) {
  auto scaled = [scale](int64_t v) {
    return std::max<int64_t>(24, static_cast<int64_t>(std::llround(v * scale)));
  };
  SyntheticConfig config;
  config.seed = 20220507;  // ICDE 2022 flavour

  DomainSpec electronics;
  electronics.name = "Electronics";
  electronics.num_users = scaled(320);
  electronics.num_items = scaled(220);
  electronics.mean_interactions = 16.0;
  electronics.shared_user_fraction = 0.35;

  DomainSpec movies;
  movies.name = "Movies";
  movies.num_users = scaled(340);
  movies.num_items = scaled(200);
  movies.mean_interactions = 15.0;
  movies.shared_user_fraction = 0.45;

  DomainSpec music;
  music.name = "Music";
  music.num_users = scaled(180);
  music.num_items = scaled(120);
  music.mean_interactions = 12.0;
  music.shared_user_fraction = 0.2;

  config.sources = {electronics, movies, music};

  DomainSpec target;
  target.name = target_name;
  if (target_name == "CDs") {
    // CDs is the smaller, sparser target (paper Table II).
    target.num_users = scaled(300);
    target.num_items = scaled(170);
    target.mean_interactions = 10.0;
    target.cold_user_fraction = 0.3;
  } else {
    target.num_users = scaled(420);
    target.num_items = scaled(240);
    target.mean_interactions = 13.0;
    target.cold_user_fraction = 0.25;
  }
  config.target = target;
  return config;
}

MultiDomainDataset Generate(const SyntheticConfig& config) {
  Rng rng(config.seed);
  const int64_t d = config.latent_shared + config.latent_specific;
  Tensor topics = MakeTopics(d, config.vocab_size, &rng);

  // Target user latents: shared part + target-specific part.
  const int64_t n_t = config.target.num_users;
  Tensor target_shared = Tensor::RandNormal({n_t, config.latent_shared}, &rng);
  Tensor target_latents({n_t, d});
  for (int64_t u = 0; u < n_t; ++u) {
    for (int64_t k = 0; k < config.latent_shared; ++k) {
      target_latents.at(u, k) = target_shared.at(u, k);
    }
    for (int64_t k = config.latent_shared; k < d; ++k) {
      target_latents.at(u, k) = static_cast<float>(rng.Normal());
    }
  }

  MultiDomainDataset out;
  Rng target_rng = rng.Split();
  out.target = GenerateDomain(config.target, config, target_latents, topics, &target_rng);

  for (const DomainSpec& spec : config.sources) {
    const int64_t n_s = spec.num_users;
    const int64_t num_shared = std::min<int64_t>(
        n_s, std::min<int64_t>(
                 n_t, static_cast<int64_t>(std::llround(spec.shared_user_fraction *
                                                        static_cast<double>(n_s)))));
    // Source users [0, num_shared) are target users chosen at random; they
    // carry over the SHARED latent part and get fresh domain-specific dims.
    auto target_picks = rng.SampleWithoutReplacement(static_cast<size_t>(n_t),
                                                     static_cast<size_t>(num_shared));
    Tensor source_latents({n_s, d});
    std::vector<std::pair<int64_t, int64_t>> mapping;
    mapping.reserve(static_cast<size_t>(num_shared));
    for (int64_t u = 0; u < n_s; ++u) {
      if (u < num_shared) {
        const int64_t tgt_u = static_cast<int64_t>(target_picks[static_cast<size_t>(u)]);
        mapping.emplace_back(u, tgt_u);
        for (int64_t k = 0; k < config.latent_shared; ++k) {
          source_latents.at(u, k) = target_shared.at(tgt_u, k);
        }
      } else {
        for (int64_t k = 0; k < config.latent_shared; ++k) {
          source_latents.at(u, k) = static_cast<float>(rng.Normal());
        }
      }
      for (int64_t k = config.latent_shared; k < d; ++k) {
        source_latents.at(u, k) = static_cast<float>(rng.Normal());
      }
    }
    Rng domain_rng = rng.Split();
    out.sources.push_back(
        GenerateDomain(spec, config, std::move(source_latents), topics, &domain_rng));
    out.shared_users.push_back(std::move(mapping));
  }
  return out;
}

}  // namespace data
}  // namespace metadpa
