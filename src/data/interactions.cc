#include "data/interactions.h"

#include <algorithm>

#include "util/status.h"

namespace metadpa {
namespace data {

InteractionMatrix::InteractionMatrix(int64_t num_users, int64_t num_items)
    : num_users_(num_users),
      num_items_(num_items),
      user_items_(static_cast<size_t>(num_users)),
      item_degree_(static_cast<size_t>(num_items), 0) {
  MDPA_CHECK_GE(num_users, 0);
  MDPA_CHECK_GE(num_items, 0);
}

void InteractionMatrix::Add(int64_t user, int64_t item) {
  MDPA_CHECK_GE(user, 0);
  MDPA_CHECK_LT(user, num_users_);
  MDPA_CHECK_GE(item, 0);
  MDPA_CHECK_LT(item, num_items_);
  auto& items = user_items_[static_cast<size_t>(user)];
  const auto it = std::lower_bound(items.begin(), items.end(), static_cast<int32_t>(item));
  if (it != items.end() && *it == static_cast<int32_t>(item)) return;
  items.insert(it, static_cast<int32_t>(item));
  ++item_degree_[static_cast<size_t>(item)];
}

bool InteractionMatrix::Remove(int64_t user, int64_t item) {
  auto& items = user_items_[static_cast<size_t>(user)];
  const auto it = std::lower_bound(items.begin(), items.end(), static_cast<int32_t>(item));
  if (it == items.end() || *it != static_cast<int32_t>(item)) return false;
  items.erase(it);
  --item_degree_[static_cast<size_t>(item)];
  return true;
}

bool InteractionMatrix::Has(int64_t user, int64_t item) const {
  const auto& items = user_items_[static_cast<size_t>(user)];
  return std::binary_search(items.begin(), items.end(), static_cast<int32_t>(item));
}

const std::vector<int32_t>& InteractionMatrix::ItemsOf(int64_t user) const {
  MDPA_CHECK_GE(user, 0);
  MDPA_CHECK_LT(user, num_users_);
  return user_items_[static_cast<size_t>(user)];
}

int64_t InteractionMatrix::ItemDegree(int64_t item) const {
  MDPA_CHECK_GE(item, 0);
  MDPA_CHECK_LT(item, num_items_);
  return item_degree_[static_cast<size_t>(item)];
}

int64_t InteractionMatrix::NumRatings() const {
  int64_t n = 0;
  for (const auto& items : user_items_) n += static_cast<int64_t>(items.size());
  return n;
}

double InteractionMatrix::Sparsity() const {
  const double cells = static_cast<double>(num_users_) * static_cast<double>(num_items_);
  if (cells == 0) return 1.0;
  return 1.0 - static_cast<double>(NumRatings()) / cells;
}

Tensor InteractionMatrix::DenseRow(int64_t user) const {
  Tensor row({num_items_}, 0.0f);
  for (int32_t item : ItemsOf(user)) row.at(item) = 1.0f;
  return row;
}

Tensor InteractionMatrix::DenseRows(const std::vector<int64_t>& users) const {
  Tensor rows({static_cast<int64_t>(users.size()), num_items_}, 0.0f);
  for (size_t r = 0; r < users.size(); ++r) {
    for (int32_t item : ItemsOf(users[r])) {
      rows.at(static_cast<int64_t>(r), item) = 1.0f;
    }
  }
  return rows;
}

}  // namespace data
}  // namespace metadpa
