// Dependency-driven backward engine: the execution core behind ag::Grad().
//
// The serial walk this replaces processed nodes in reverse topological order,
// so a wide graph — the Dual-CVAE's per-source encoder/decoder towers, the
// Concat/Split fan-outs, a MAML second-order meta-graph — ran one branch at a
// time even though the branches share no state. The engine instead executes
// backward as a ready queue over per-node dependency counts:
//
//  1. Pre-pass (serial, on the calling thread): the same iterative DFS
//     topo-sort as before enumerates the requires_grad subgraph; walking it
//     in reverse-topological (processing) order assigns every edge
//     (consumer, input-slot) a POSITION-INDEXED SLOT on the producer and
//     bumps the producer's outstanding-dependency count.
//  2. Execution: the output node seeds the ready queue. Executing a node
//     merges its slots, runs its backward closure, writes each input
//     gradient into that input's reserved slot, and decrements the input's
//     dependency count; the decrement that reaches zero enqueues the input.
//     Any set of ready nodes may run concurrently — they touch disjoint
//     slots and engine-local state only, never the shared graph nodes.
//
// Determinism contract (the reason grad_threads=N is bit-identical to
// serial): a multi-consumer node's gradient is the floating-point sum of its
// slot contributions IN SLOT ORDER — first collision makes a fresh t::Add,
// later arrivals AddInPlace into that owned buffer (with create_graph, an
// Add node chain in the same order). Slot order equals the serial engine's
// arrival order by construction, so the merged sums — and therefore every
// downstream closure input — are the exact tensors the serial walk produced,
// regardless of which thread executed what when. Execution ORDER is
// scheduler-dependent; execution VALUES are not.
//
// create_graph: backward closures build grad-graph nodes on whichever engine
// thread executes them. That is safe under the PR-3 graph-isolation
// invariant (autograd/variable.h): closures only READ the forward graph's
// nodes and link new nodes against them; the per-slot publish plus the
// acquire/release dependency-count handoff sequences every cross-thread
// edge, which is also what makes the engine TSan-visible (no lock-free
// cleverness the sanitizer cannot see).
//
// Deadlock safety: the calling thread is always an executor; pool helpers
// are optional accelerators recruited with TrySubmit and released through a
// CountdownLatch. Inside a pool worker (ThreadPool::InsideWorker) the engine
// degrades to serial — blocking a fixed-size pool's workers on each other
// can deadlock, exactly the ParallelFor rule.
#ifndef METADPA_AUTOGRAD_ENGINE_H_
#define METADPA_AUTOGRAD_ENGINE_H_

#include <vector>

#include "autograd/variable.h"

namespace metadpa {
namespace ag {
namespace engine {

/// \brief Depth-first post-order over the requires-grad subgraph (iterative,
/// survives deep chains). Producers appear before consumers. Shared with the
/// tape optimizer (autograd/optimizer.h) so plans align with engine order.
void TopoSort(const NodePtr& root, std::vector<NodePtr>* order);

/// \brief Runs backward for `output` and returns gradients aligned with
/// `inputs`. Validation of the arguments (scalar output, requires_grad) is
/// Grad()'s job; this assumes them. opts.threads selects the executor count
/// (1 = serial, 0 = all cores, N = cap). With opts.optimize (and not
/// create_graph) the tape optimizer's plan drives execution: fused chains
/// skip their interior nodes, duplicate closures are shared when their
/// incoming gradients share storage, and dead gradients return their buffers
/// to the pool mid-backward — bit-identical results either way.
std::vector<Variable> Run(const Variable& output, const std::vector<Variable>& inputs,
                          const GradOptions& opts);

}  // namespace engine
}  // namespace ag
}  // namespace metadpa

#endif  // METADPA_AUTOGRAD_ENGINE_H_
