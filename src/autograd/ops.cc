#include "autograd/ops.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "tensor/ops.h"

namespace metadpa {
namespace ag {
namespace {

using BackwardFn = std::function<std::vector<Variable>(const Variable&)>;

/// Scalar op attributes are stored as the float's bit pattern widened to
/// uint64 — exact (no rounding), so CSE only ever merges bit-equal params.
uint64_t FloatAttr(float f) {
  uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

/// Creates the output node. If no input requires grad the tape entry is
/// dropped entirely (constant folding), so inference builds no graph. The
/// OpId + attrs are recorded unconditionally (they are inline fields, free)
/// so the tape optimizer can pattern-match and value-number the graph.
Variable MakeNode(OpId op, const char* name, Tensor value,
                  const std::vector<Variable>& inputs, BackwardFn bw,
                  std::initializer_list<uint64_t> attrs = {},
                  bool cse_safe = true) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->op_name = name;
  node->op = op;
  node->cse_safe = cse_safe;
  for (uint64_t a : attrs) {
    MDPA_CHECK_LT(node->attr_count, 3);
    node->attrs[node->attr_count++] = a;
  }
  bool requires_grad = false;
  for (const Variable& v : inputs) requires_grad = requires_grad || v.requires_grad();
  node->requires_grad = requires_grad;
  if (requires_grad) {
    node->inputs.reserve(inputs.size());
    for (const Variable& v : inputs) node->inputs.push_back(v.node());
    node->backward = std::move(bw);
  }
  return Variable(node);
}

}  // namespace

Variable Constant(Tensor value) { return Variable(std::move(value), false); }

Variable ConstantScalar(float value) { return Constant(Tensor::Scalar(value)); }

Variable Add(const Variable& a, const Variable& b) {
  return MakeNode(OpId::kAdd, "add", t::Add(a.data(), b.data()), {a, b},
                  [a, b](const Variable& g) -> std::vector<Variable> {
                    return {ReduceTo(g, a.shape()), ReduceTo(g, b.shape())};
                  });
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeNode(OpId::kSub, "sub", t::Sub(a.data(), b.data()), {a, b},
                  [a, b](const Variable& g) -> std::vector<Variable> {
                    return {ReduceTo(g, a.shape()), ReduceTo(Neg(g), b.shape())};
                  });
}

Variable Mul(const Variable& a, const Variable& b) {
  return MakeNode(OpId::kMul, "mul", t::Mul(a.data(), b.data()), {a, b},
                  [a, b](const Variable& g) -> std::vector<Variable> {
                    return {ReduceTo(Mul(g, b), a.shape()), ReduceTo(Mul(g, a), b.shape())};
                  });
}

Variable Div(const Variable& a, const Variable& b) {
  return MakeNode(OpId::kDiv, "div", t::Div(a.data(), b.data()), {a, b},
                  [a, b](const Variable& g) -> std::vector<Variable> {
                    Variable ga = ReduceTo(Div(g, b), a.shape());
                    Variable gb = ReduceTo(Neg(Div(Mul(g, a), Mul(b, b))), b.shape());
                    return {ga, gb};
                  });
}

Variable AddScalar(const Variable& a, float s) {
  return MakeNode(OpId::kAddScalar, "add_scalar", t::AddScalar(a.data(), s), {a},
                  [](const Variable& g) -> std::vector<Variable> { return {g}; },
                  {FloatAttr(s)});
}

Variable MulScalar(const Variable& a, float s) {
  return MakeNode(OpId::kMulScalar, "mul_scalar", t::MulScalar(a.data(), s), {a},
                  [s](const Variable& g) -> std::vector<Variable> {
                    return {MulScalar(g, s)};
                  },
                  {FloatAttr(s)});
}

Variable PowScalar(const Variable& a, float exponent) {
  return MakeNode(OpId::kPowScalar, "pow_scalar", t::PowScalar(a.data(), exponent), {a},
                  [a, exponent](const Variable& g) -> std::vector<Variable> {
                    // d/dx x^p = p * x^(p-1)
                    return {Mul(g, MulScalar(PowScalar(a, exponent - 1.0f), exponent))};
                  },
                  {FloatAttr(exponent)});
}

Variable Neg(const Variable& a) {
  return MakeNode(OpId::kNeg, "neg", t::Neg(a.data()), {a},
                  [](const Variable& g) -> std::vector<Variable> { return {Neg(g)}; });
}

Variable Exp(const Variable& a) {
  return MakeNode(OpId::kExp, "exp", t::Exp(a.data()), {a},
                  [a](const Variable& g) -> std::vector<Variable> {
                    return {Mul(g, Exp(a))};  // recompute; see header note on cycles
                  });
}

Variable Log(const Variable& a) {
  return MakeNode(OpId::kLog, "log", t::Log(a.data()), {a},
                  [a](const Variable& g) -> std::vector<Variable> {
                    return {Div(g, a)};
                  });
}

Variable Sqrt(const Variable& a) {
  return MakeNode(OpId::kSqrt, "sqrt", t::Sqrt(a.data()), {a},
                  [a](const Variable& g) -> std::vector<Variable> {
                    return {Div(MulScalar(g, 0.5f), Sqrt(a))};
                  });
}

Variable Sigmoid(const Variable& a) {
  return MakeNode(OpId::kSigmoid, "sigmoid", t::Sigmoid(a.data()), {a},
                  [a](const Variable& g) -> std::vector<Variable> {
                    Variable s = Sigmoid(a);
                    return {Mul(g, Mul(s, AddScalar(Neg(s), 1.0f)))};
                  });
}

Variable Tanh(const Variable& a) {
  return MakeNode(OpId::kTanh, "tanh", t::Tanh(a.data()), {a},
                  [a](const Variable& g) -> std::vector<Variable> {
                    Variable th = Tanh(a);
                    return {Mul(g, AddScalar(Neg(Mul(th, th)), 1.0f))};
                  });
}

Variable Relu(const Variable& a) {
  return MakeNode(OpId::kRelu, "relu", t::Relu(a.data()), {a},
                  [a](const Variable& g) -> std::vector<Variable> {
                    // Mask is constant w.r.t. the tape (correct a.e.).
                    Variable mask =
                        Constant(t::Greater(a.data(), Tensor::Zeros(a.shape())));
                    return {Mul(g, mask)};
                  });
}

Variable Softplus(const Variable& a) {
  // softplus(x) = max(x, 0) + log(1 + exp(-|x|)), stable in both tails.
  Tensor x = a.data();
  Tensor value =
      t::Add(t::Relu(x), t::Log(t::AddScalar(t::Exp(t::Neg(t::Abs(x))), 1.0f)));
  return MakeNode(OpId::kSoftplus, "softplus", std::move(value), {a},
                  [a](const Variable& g) -> std::vector<Variable> {
                    return {Mul(g, Sigmoid(a))};
                  });
}

Variable Abs(const Variable& a) {
  return MakeNode(OpId::kAbs, "abs", t::Abs(a.data()), {a},
                  [a](const Variable& g) -> std::vector<Variable> {
                    // sign(x) as a constant mask: +1 where x > 0, -1 where
                    // x < 0, 0 at exactly 0 (the subgradient choice).
                    Tensor sign(a.shape());
                    const Tensor& x = a.data();
                    for (int64_t i = 0; i < x.numel(); ++i) {
                      sign.at(i) = x.at(i) > 0 ? 1.0f : (x.at(i) < 0 ? -1.0f : 0.0f);
                    }
                    return {Mul(g, Constant(std::move(sign)))};
                  });
}

namespace {

/// Shared implementation for elementwise max/min: the gradient flows to the
/// winning side, split evenly on exact ties.
Variable MaxMinImpl(OpId op, const char* name, const Variable& a, const Variable& b,
                    bool is_max) {
  Tensor value = is_max ? t::Maximum(a.data(), b.data()) : t::Minimum(a.data(), b.data());
  return MakeNode(
      op, name, std::move(value), {a, b},
      [a, b, is_max](const Variable& g) -> std::vector<Variable> {
        const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
        Tensor abig = t::BroadcastTo(a.data(), out_shape);
        Tensor bbig = t::BroadcastTo(b.data(), out_shape);
        Tensor mask_a(out_shape), mask_b(out_shape);
        for (int64_t i = 0; i < abig.numel(); ++i) {
          const float av = abig.at(i), bv = bbig.at(i);
          float wa;
          if (av == bv) {
            wa = 0.5f;
          } else {
            const bool a_wins = is_max ? av > bv : av < bv;
            wa = a_wins ? 1.0f : 0.0f;
          }
          mask_a.at(i) = wa;
          mask_b.at(i) = 1.0f - wa;
        }
        return {ReduceTo(Mul(g, Constant(std::move(mask_a))), a.shape()),
                ReduceTo(Mul(g, Constant(std::move(mask_b))), b.shape())};
      });
}

}  // namespace

Variable Maximum(const Variable& a, const Variable& b) {
  return MaxMinImpl(OpId::kMaximum, "maximum", a, b, /*is_max=*/true);
}

Variable Minimum(const Variable& a, const Variable& b) {
  return MaxMinImpl(OpId::kMinimum, "minimum", a, b, /*is_max=*/false);
}

Variable ClampMin(const Variable& a, float lo) {
  return MakeNode(OpId::kClampMin, "clamp_min",
                  t::Maximum(a.data(), Tensor::Full(a.shape(), lo)), {a},
                  [a, lo](const Variable& g) -> std::vector<Variable> {
                    Variable mask =
                        Constant(t::Greater(a.data(), Tensor::Full(a.shape(), lo)));
                    return {Mul(g, mask)};
                  },
                  {FloatAttr(lo)});
}

Variable MatMul(const Variable& a, const Variable& b) {
  // dA = g·bᵀ, dB = aᵀ·g — computed transpose-free by the NT/TN kernels.
  return MakeNode(OpId::kMatMul, "matmul", t::MatMul(a.data(), b.data()), {a, b},
                  [a, b](const Variable& g) -> std::vector<Variable> {
                    return {MatMulNT(g, b), MatMulTN(a, g)};
                  });
}

Variable MatMulNT(const Variable& a, const Variable& b) {
  // c = a·bᵀ: dA = g·b, dB = gᵀ·a.
  return MakeNode(OpId::kMatMulNT, "matmul_nt", t::MatMulNT(a.data(), b.data()), {a, b},
                  [a, b](const Variable& g) -> std::vector<Variable> {
                    return {MatMul(g, b), MatMulTN(g, a)};
                  });
}

Variable MatMulTN(const Variable& a, const Variable& b) {
  // c = aᵀ·b: dA = b·gᵀ, dB = a·g.
  return MakeNode(OpId::kMatMulTN, "matmul_tn", t::MatMulTN(a.data(), b.data()), {a, b},
                  [a, b](const Variable& g) -> std::vector<Variable> {
                    return {MatMulNT(b, g), MatMul(a, g)};
                  });
}

Variable Linear(const Variable& x, const Variable& w, const Variable& bias) {
  const Shape bias_shape = bias.shape();
  return MakeNode(OpId::kLinear, "linear",
                  t::LinearForward(x.data(), w.data(), bias.data()), {x, w, bias},
                  [x, w, bias_shape](const Variable& g) -> std::vector<Variable> {
                    return {MatMulNT(g, w), MatMulTN(x, g), ReduceTo(g, bias_shape)};
                  });
}

Variable Transpose(const Variable& a) {
  return MakeNode(OpId::kTranspose, "transpose", t::Transpose(a.data()), {a},
                  [](const Variable& g) -> std::vector<Variable> {
                    return {Transpose(g)};
                  });
}

Variable Reshape(const Variable& a, Shape new_shape) {
  Shape original = a.shape();
  const Shape target = new_shape;
  Variable out = MakeNode(OpId::kReshape, "reshape",
                          a.data().Reshape(std::move(new_shape)), {a},
                          [original](const Variable& g) -> std::vector<Variable> {
                            return {Reshape(g, original)};
                          });
  // Target dims are the CSE key; ranks beyond the inline attr capacity are
  // simply opted out of CSE (none exist in this codebase today).
  Node* node = out.node().get();
  if (target.size() <= 3) {
    for (int64_t d : target) node->attrs[node->attr_count++] = static_cast<uint64_t>(d);
  } else {
    node->cse_safe = false;
  }
  return out;
}

Variable SumAll(const Variable& a) {
  return MakeNode(OpId::kSumAll, "sum_all", t::SumAll(a.data()), {a},
                  [a](const Variable& g) -> std::vector<Variable> {
                    return {ExpandTo(g, a.shape())};
                  });
}

Variable MeanAll(const Variable& a) {
  const float inv_n = 1.0f / static_cast<float>(a.numel());
  return MakeNode(OpId::kMeanAll, "mean_all", t::MeanAll(a.data()), {a},
                  [a, inv_n](const Variable& g) -> std::vector<Variable> {
                    return {ExpandTo(MulScalar(g, inv_n), a.shape())};
                  });
}

Variable Sum(const Variable& a, int64_t axis, bool keepdims) {
  if (axis < 0) axis += a.data().ndim();
  Shape keep_shape = a.shape();
  keep_shape[static_cast<size_t>(axis)] = 1;
  return MakeNode(OpId::kSumAxis, "sum_axis", t::Sum(a.data(), axis, keepdims), {a},
                  [a, keep_shape](const Variable& g) -> std::vector<Variable> {
                    Variable gk = Reshape(g, keep_shape);
                    return {ExpandTo(gk, a.shape())};
                  },
                  {static_cast<uint64_t>(axis), keepdims ? 1u : 0u});
}

Variable Mean(const Variable& a, int64_t axis, bool keepdims) {
  if (axis < 0) axis += a.data().ndim();
  const float inv_n = 1.0f / static_cast<float>(a.shape()[static_cast<size_t>(axis)]);
  return MulScalar(Sum(a, axis, keepdims), inv_n);
}

Variable ReduceTo(const Variable& a, const Shape& target) {
  if (SameShape(a.shape(), target)) return a;
  Variable cur = a;
  while (cur.data().ndim() > static_cast<int64_t>(target.size())) {
    cur = Sum(cur, 0, /*keepdims=*/false);
  }
  for (int64_t i = 0; i < cur.data().ndim(); ++i) {
    if (target[static_cast<size_t>(i)] == 1 && cur.shape()[static_cast<size_t>(i)] != 1) {
      cur = Sum(cur, i, /*keepdims=*/true);
    }
  }
  MDPA_CHECK(SameShape(cur.shape(), target))
      << "ReduceTo " << ShapeToString(a.shape()) << " -> " << ShapeToString(target);
  return cur;
}

Variable ExpandTo(const Variable& a, const Shape& target) {
  if (SameShape(a.shape(), target)) return a;
  return Mul(a, Constant(Tensor::Ones(target)));
}

Variable Softmax(const Variable& a) {
  // Shift by the (detached) row max: softmax is shift-invariant, so treating
  // the max as a constant leaves both value and gradient exact.
  const int64_t axis = a.data().ndim() - 1;
  Variable shift = Constant(t::Max(a.data(), axis, /*keepdims=*/true));
  Variable e = Exp(Sub(a, shift));
  return Div(e, Sum(e, axis, /*keepdims=*/true));
}

Variable LogSoftmax(const Variable& a) {
  const int64_t axis = a.data().ndim() - 1;
  Variable shift = Constant(t::Max(a.data(), axis, /*keepdims=*/true));
  Variable s = Sub(a, shift);
  return Sub(s, Log(Sum(Exp(s), axis, /*keepdims=*/true)));
}

Variable ConcatRows(const std::vector<Variable>& parts) {
  MDPA_CHECK(!parts.empty());
  std::vector<Tensor> data;
  data.reserve(parts.size());
  for (const auto& p : parts) data.push_back(p.data());
  std::vector<int64_t> lens;
  lens.reserve(parts.size());
  for (const auto& p : parts) lens.push_back(p.shape()[0]);
  return MakeNode(OpId::kConcatRows, "concat_rows", t::Concat(data, 0), parts,
                  [parts, lens](const Variable& g) -> std::vector<Variable> {
                    std::vector<Variable> grads;
                    grads.reserve(parts.size());
                    int64_t off = 0;
                    for (size_t i = 0; i < parts.size(); ++i) {
                      grads.push_back(SliceRows(g, off, lens[i]));
                      off += lens[i];
                    }
                    return grads;
                  });
}

Variable ConcatCols(const std::vector<Variable>& parts) {
  MDPA_CHECK(!parts.empty());
  std::vector<Tensor> data;
  data.reserve(parts.size());
  for (const auto& p : parts) data.push_back(p.data());
  std::vector<int64_t> lens;
  lens.reserve(parts.size());
  for (const auto& p : parts) lens.push_back(p.shape()[1]);
  return MakeNode(OpId::kConcatCols, "concat_cols", t::Concat(data, 1), parts,
                  [parts, lens](const Variable& g) -> std::vector<Variable> {
                    std::vector<Variable> grads;
                    grads.reserve(parts.size());
                    int64_t off = 0;
                    for (size_t i = 0; i < parts.size(); ++i) {
                      grads.push_back(SliceCols(g, off, lens[i]));
                      off += lens[i];
                    }
                    return grads;
                  });
}

namespace {

Tensor SliceRowsKernel(const Tensor& a, int64_t start, int64_t len) {
  MDPA_CHECK_GE(start, 0);
  MDPA_CHECK_LE(start + len, a.dim(0));
  if (a.ndim() == 1) {
    Tensor out({len});
    std::copy(a.data() + start, a.data() + start + len, out.data());
    return out;
  }
  MDPA_CHECK_EQ(a.ndim(), 2);
  const int64_t cols = a.dim(1);
  Tensor out({len, cols});
  std::copy(a.data() + start * cols, a.data() + (start + len) * cols, out.data());
  return out;
}

Tensor SliceColsKernel(const Tensor& a, int64_t start, int64_t len) {
  MDPA_CHECK_EQ(a.ndim(), 2);
  MDPA_CHECK_GE(start, 0);
  MDPA_CHECK_LE(start + len, a.dim(1));
  const int64_t rows = a.dim(0), cols = a.dim(1);
  Tensor out({rows, len});
  for (int64_t r = 0; r < rows; ++r) {
    std::copy(a.data() + r * cols + start, a.data() + r * cols + start + len,
              out.data() + r * len);
  }
  return out;
}

}  // namespace

Variable SliceRows(const Variable& a, int64_t start, int64_t len) {
  const Shape in_shape = a.shape();
  return MakeNode(OpId::kSliceRows, "slice_rows", SliceRowsKernel(a.data(), start, len),
                  {a},
                  [in_shape, start, len](const Variable& g) -> std::vector<Variable> {
                    const int64_t total = in_shape[0];
                    std::vector<Variable> parts;
                    if (start > 0) {
                      Shape pre = in_shape;
                      pre[0] = start;
                      parts.push_back(Constant(Tensor::Zeros(pre)));
                    }
                    parts.push_back(g);
                    if (start + len < total) {
                      Shape post = in_shape;
                      post[0] = total - start - len;
                      parts.push_back(Constant(Tensor::Zeros(post)));
                    }
                    return {parts.size() == 1 ? parts[0] : ConcatRows(parts)};
                  },
                  {static_cast<uint64_t>(start), static_cast<uint64_t>(len)});
}

Variable SliceCols(const Variable& a, int64_t start, int64_t len) {
  const Shape in_shape = a.shape();
  return MakeNode(OpId::kSliceCols, "slice_cols", SliceColsKernel(a.data(), start, len),
                  {a},
                  [in_shape, start, len](const Variable& g) -> std::vector<Variable> {
                    const int64_t total = in_shape[1];
                    std::vector<Variable> parts;
                    if (start > 0) {
                      parts.push_back(Constant(Tensor::Zeros({in_shape[0], start})));
                    }
                    parts.push_back(g);
                    if (start + len < total) {
                      parts.push_back(Constant(
                          Tensor::Zeros({in_shape[0], total - start - len})));
                    }
                    return {parts.size() == 1 ? parts[0] : ConcatCols(parts)};
                  },
                  {static_cast<uint64_t>(start), static_cast<uint64_t>(len)});
}

Variable IndexSelectRows(const Variable& a, std::vector<int64_t> indices) {
  MDPA_CHECK_EQ(a.data().ndim(), 2);
  const int64_t num_rows = a.shape()[0];
  Tensor value = t::IndexSelect(a.data(), indices);
  return MakeNode(OpId::kIndexSelectRows, "index_select_rows", std::move(value), {a},
                  [indices = std::move(indices),
                   num_rows](const Variable& g) -> std::vector<Variable> {
                    return {ScatterAddRows(g, indices, num_rows)};
                  },
                  {}, /*cse_safe=*/false);
}

Variable ScatterAddRows(const Variable& rows, std::vector<int64_t> indices,
                        int64_t num_rows) {
  MDPA_CHECK_EQ(rows.data().ndim(), 2);
  MDPA_CHECK_EQ(static_cast<int64_t>(indices.size()), rows.shape()[0]);
  const int64_t cols = rows.shape()[1];
  Tensor value({num_rows, cols}, 0.0f);
  for (size_t i = 0; i < indices.size(); ++i) {
    MDPA_CHECK_GE(indices[i], 0);
    MDPA_CHECK_LT(indices[i], num_rows);
    for (int64_t c = 0; c < cols; ++c) {
      value.at(indices[i], c) += rows.data().at(static_cast<int64_t>(i), c);
    }
  }
  return MakeNode(OpId::kScatterAddRows, "scatter_add_rows", std::move(value), {rows},
                  [indices = std::move(indices)](const Variable& g)
                      -> std::vector<Variable> {
                    return {IndexSelectRows(g, indices)};
                  },
                  {}, /*cse_safe=*/false);
}

Variable BceWithLogits(const Variable& logits, const Variable& targets) {
  MDPA_CHECK(SameShape(logits.shape(), targets.shape()));
  return MeanAll(Sub(Softplus(logits), Mul(logits, targets)));
}

Variable MseLoss(const Variable& a, const Variable& b) {
  MDPA_CHECK(SameShape(a.shape(), b.shape()));
  return MeanAll(PowScalar(Sub(a, b), 2.0f));
}

}  // namespace ag
}  // namespace metadpa
