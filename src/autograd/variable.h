// Reverse-mode automatic differentiation with higher-order gradient support.
//
// Design: a Variable wraps a graph Node holding the forward value, parent
// links and a backward closure. Every backward closure is written in terms of
// the differentiable ops in autograd/ops.h (never raw kernels that would cut
// the tape), so gradients returned by Grad(..., create_graph=true) are
// themselves differentiable. This is exactly what the MAML outer loop needs:
//
//   fast  = w - alpha * Grad(L_support(w), {w}, /*create_graph=*/true)
//   metag = Grad(L_query(fast), {w})   // second-order flow through the inner grad
//
// Backward closures may capture *input* Variables (parent links already exist,
// so no new ownership cycles arise) but must never capture the output
// Variable: that would make the Node own itself through the closure and leak.
// Ops whose derivative is naturally written in terms of the output (sigmoid,
// tanh, exp, ...) recompute it from the inputs inside the closure instead.
//
// Thread safety (the parallel-training contract, DESIGN.md "Parallel
// training"): the engine keeps no global mutable state besides an atomic
// node counter, and Grad() walks with function-local maps, so threads may
// build graphs and run Grad() concurrently PROVIDED their graphs share only
// leaf nodes (typically model parameters) and every shared leaf is treated
// as read-only for the duration — no SetData/MutableData while another
// thread links against it or differentiates through it. Interior (non-leaf)
// nodes must never be shared across concurrently built graphs: consumers
// append to shared subgraph tails only via their own Variables, and
// Grad()'s in-place accumulation assumes single-threaded ownership of each
// gradient slot.
#ifndef METADPA_AUTOGRAD_VARIABLE_H_
#define METADPA_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace metadpa {
namespace ag {

class Variable;

/// \brief Structural identity of the op that produced a node. The tape
/// optimizer (autograd/optimizer.h) keys fusion pattern-matching and CSE
/// value-numbering on (op, input identities, attrs); kLeaf marks nodes built
/// directly from data (parameters, constants, engine-internal tensors).
enum class OpId : uint8_t {
  kLeaf = 0,
  kAdd, kSub, kMul, kDiv,
  kAddScalar, kMulScalar, kPowScalar, kNeg,
  kExp, kLog, kSqrt, kSigmoid, kTanh, kRelu, kSoftplus, kAbs,
  kMaximum, kMinimum, kClampMin,
  kMatMul, kMatMulNT, kMatMulTN, kLinear, kTranspose, kReshape,
  kSumAll, kMeanAll, kSumAxis,
  kConcatRows, kConcatCols, kSliceRows, kSliceCols,
  kIndexSelectRows, kScatterAddRows,
};

/// \brief Internal graph node. Public because tests and the Grad engine walk
/// the graph; user code should only touch Variable.
struct Node {
  Node();
  ~Node();

  Tensor value;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> inputs;
  /// Given the gradient w.r.t. this node's value, returns gradients w.r.t.
  /// each entry of `inputs` (an invalid Variable for non-differentiable ones).
  std::function<std::vector<Variable>(const Variable& grad_out)> backward;
  const char* op_name = "leaf";

  /// Structural op identity plus the scalar attributes that parameterize it
  /// (float bits widened to uint64, ints verbatim) — together with the input
  /// nodes these fully determine the forward value for CSE-safe ops. Stored
  /// inline (no allocation) so hot-path node creation stays malloc-free.
  OpId op = OpId::kLeaf;
  uint8_t attr_count = 0;
  /// False for ops whose value depends on closure-captured state the attrs
  /// cannot encode (index_select/scatter_add row vectors) — never CSE'd.
  bool cse_safe = true;
  uint64_t attrs[3] = {0, 0, 0};
};

using NodePtr = std::shared_ptr<Node>;

/// \brief A tensor tracked by the autograd tape.
class Variable {
 public:
  /// \brief Invalid (empty) variable; is_valid() is false.
  Variable() = default;

  /// \brief Leaf variable wrapping `data`.
  explicit Variable(Tensor data, bool requires_grad = false);

  /// \brief Wraps an existing node (used by the op layer).
  explicit Variable(NodePtr node) : node_(std::move(node)) {}

  bool is_valid() const { return node_ != nullptr; }
  const Tensor& data() const;
  const Shape& shape() const { return data().shape(); }
  int64_t numel() const { return data().numel(); }
  float item() const { return data().item(); }
  bool requires_grad() const { return node_ != nullptr && node_->requires_grad; }
  const NodePtr& node() const { return node_; }

  /// \brief Same value, cut off from the tape (requires_grad=false leaf).
  Variable Detach() const;

  /// \brief In-place assignment of new data to a leaf (used by optimizers).
  /// Aborts if this variable has a grad_fn (is not a leaf).
  void SetData(Tensor data);

  /// \brief Tensor aliasing a leaf's storage, for in-place optimizer updates
  /// (t::AddInPlace / t::AxpyInPlace / fused update loops). Mutations are
  /// value-equivalent to SetData with the updated tensor, but keep the same
  /// buffer, so per-parameter updates allocate nothing. Aborts on non-leaf.
  Tensor MutableData();

 private:
  NodePtr node_;
};

/// \brief Options for Grad().
struct GradOptions {
  /// Build a differentiable graph for the returned gradients (needed for
  /// second-order derivatives).
  bool create_graph = false;
  /// Permit inputs that the output does not depend on; their gradient comes
  /// back as zeros of the input shape.
  bool allow_unused = true;
  /// Concurrent executors for the backward walk itself (1 = serial, 0 = all
  /// cores, N = at most N — the repo-wide threads convention). Independent
  /// branches of the graph run concurrently on util::ThreadPool; results are
  /// bit-identical for any value because multi-consumer gradients merge in a
  /// fixed consumer order (see autograd/engine.h). Degrades to serial inside
  /// pool workers, so task-level parallelism (MamlConfig::threads) and
  /// graph-level parallelism compose without deadlock.
  int threads = 1;
  /// Run the tape optimizer (autograd/optimizer.h) before execution: fuse
  /// elementwise backward chains, share duplicate subexpression closures, and
  /// release dead intermediate buffers to the pool mid-backward. Results are
  /// bit-identical to optimize=false at every thread count (DESIGN.md "Tape
  /// optimization"). create_graph=true calls run unoptimized — rewriting the
  /// tape there would change the *structure* of the constructed gradient
  /// graph; the outer first-order Grad over that graph still optimizes.
  bool optimize = false;
};

/// \brief Computes d(output)/d(inputs) for a scalar `output`.
///
/// Returns one Variable per input, aligned with `inputs`. With
/// opts.create_graph the results stay on the tape (differentiable); otherwise
/// they are detached leaves.
///
/// Backward executes on the dependency-driven engine (autograd/engine.h): a
/// pre-pass counts each node's outstanding consumers, then a ready queue runs
/// any node whose consumers have all delivered gradients — serially by
/// default, or on opts.threads executors. The result is bit-identical for
/// every thread count, including create_graph second-order graphs.
std::vector<Variable> Grad(const Variable& output, const std::vector<Variable>& inputs,
                           const GradOptions& opts = {});

/// \brief Number of live autograd nodes (leak check hook for tests).
int64_t LiveNodeCount();

}  // namespace ag
}  // namespace metadpa

#endif  // METADPA_AUTOGRAD_VARIABLE_H_
