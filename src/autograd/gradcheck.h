// Numeric gradient checking for first- and second-order derivatives.
#ifndef METADPA_AUTOGRAD_GRADCHECK_H_
#define METADPA_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"
#include "util/rng.h"

namespace metadpa {
namespace ag {

/// \brief A scalar-valued differentiable function of several tensors.
using ScalarFn = std::function<Variable(const std::vector<Variable>&)>;

/// \brief Maximum absolute difference between analytic and central-difference
/// gradients of `fn` at `points`.
double MaxGradError(const ScalarFn& fn, const std::vector<Tensor>& points,
                    double eps = 1e-3);

/// \brief Checks the second-order path: defines h(x) = <Grad f(x), v> for a
/// fixed random direction v and compares Grad h against central differences.
/// Exercises exactly the create_graph machinery that MAML uses.
double MaxSecondOrderError(const ScalarFn& fn, const std::vector<Tensor>& points,
                           Rng* rng, double eps = 1e-3);

}  // namespace ag
}  // namespace metadpa

#endif  // METADPA_AUTOGRAD_GRADCHECK_H_
