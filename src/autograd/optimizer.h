// Tape-level graph optimizer: the analysis pass ag::Grad runs before the
// dependency-driven engine executes (GradOptions::optimize).
//
// Three cooperating optimizations, all bit-identity preserving (DESIGN.md
// "Tape optimization"):
//
//  1. FUSION — a chain of single-consumer elementwise backward links
//     (activation grads, scalar scale/shift, one-sided add/mul/div) is
//     collapsed into one t::fused::BackwardChain step list. The chain's
//     interior nodes never execute and their intermediate gradient tensors
//     are never materialized; the fused kernel delivers the chain-bottom
//     gradient directly into the slot the bottom link's closure would have
//     filled. Elementwise backward kernels are pointwise, so the fused
//     per-element scalar sequence performs the identical float ops in the
//     identical order as the separate tensor passes — same bits.
//  2. CSE — value numbering over (op, input value-numbers, attrs) groups
//     structurally identical nodes into classes. Rewiring the tape to merge
//     duplicates would CHANGE gradient-merge sum trees (float addition is
//     not associative), so classes are only a runtime gate: when a class
//     member's merged incoming gradient arrives in the SAME STORAGE as the
//     gradient a sibling already ran its closure with, the cached closure
//     outputs are reused and delivered into the member's ordinary slots.
//     Slot structure is untouched, so every downstream sum is bitwise
//     unchanged; the closure execution is simply skipped.
//  3. BUFFER RELEASE — after a node executes, its merged gradient (unless
//     the caller requested it) and its consumed contribution slots are dead;
//     the engine drops those handles immediately so the buffers return to
//     the PR 2 thread-local pool mid-backward instead of at graph teardown.
//     Aliased buffers survive automatically through reference counting —
//     release is a handle drop, never a forced free.
//
// The pass runs only when !GradOptions::create_graph: under create_graph the
// backward closures BUILD the second-order graph, and fusing or sharing them
// would change that graph's structure (and hence the outer Grad's slot-merge
// order). Second-order training still benefits: the outer, first-order Grad
// over the inner-built graph is optimized.
#ifndef METADPA_AUTOGRAD_OPTIMIZER_H_
#define METADPA_AUTOGRAD_OPTIMIZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "autograd/variable.h"
#include "tensor/fused.h"

namespace metadpa {
namespace ag {
namespace optimizer {

/// One fused backward chain. Node references are indices into the
/// topo-sorted order the plan was built from.
struct Chain {
  uint32_t tail = 0;    ///< first link; its merged gradient enters the chain
  uint32_t bottom = 0;  ///< deepest interior link
  /// Input position on `bottom` whose producer receives the fused result
  /// (the slot the unfused bottom closure would have delivered into).
  uint32_t deliver_input_pos = 0;
  /// Per-link steps in tail→bottom order for t::fused::BackwardChain.
  std::vector<t::fused::Step> steps;
};

/// The optimization plan for one backward execution, aligned with the
/// engine's topo order. Pure analysis output: nothing here mutates the graph.
struct Plan {
  /// 1 = chain interior: the engine never executes this node and its
  /// gradient tensor is never materialized.
  std::vector<uint8_t> fused_interior;
  /// Chain id when this node is a chain tail, else -1.
  std::vector<int32_t> chain_of;
  std::vector<Chain> chains;
  /// CSE class id (0..num_cse_classes) for nodes in a duplicate class, else
  /// -1. Classes have >= 2 members and exclude chain participants.
  std::vector<int32_t> cse_class;
  uint32_t num_cse_classes = 0;
  /// 1 = merged gradient may be dropped right after the node executes (the
  /// caller did not request it).
  std::vector<uint8_t> releasable;

  /// Static pass statistics (exact, schedule-independent).
  int64_t nodes_fused = 0;      ///< backward closures replaced by fused kernels
  int64_t release_planned = 0;  ///< nodes whose gradient is eagerly dropped
};

/// \brief Builds the plan for a topo-sorted requires-grad subgraph.
///
/// `order` is the engine's reverse post-order; `consumer_counts[i]` is the
/// number of in-subgraph consumers of order[i] (the root's backward seed is
/// NOT counted); `requested[i]` marks nodes whose gradient the caller asked
/// for; `root_index` locates the output node. Linear time in nodes + edges.
/// `index` optionally supplies the node->position map for `order` (the
/// engine already built one); pass nullptr to have Analyze derive it.
Plan Analyze(const std::vector<NodePtr>& order,
             const std::vector<uint32_t>& consumer_counts,
             const std::vector<uint8_t>& requested, size_t root_index,
             const std::unordered_map<const Node*, uint32_t>* index = nullptr);

/// \brief Convenience wrapper for tests and diagnostics: topo-sorts
/// `output`'s subgraph exactly as the engine does, derives consumer counts
/// and the requested set from `inputs`, and returns Analyze()'s plan.
Plan AnalyzeTape(const Variable& output, const std::vector<Variable>& inputs);

}  // namespace optimizer
}  // namespace ag
}  // namespace metadpa

#endif  // METADPA_AUTOGRAD_OPTIMIZER_H_
