// Differentiable operations on ag::Variable.
//
// Every backward closure here is composed of these same ops, so all gradients
// are themselves differentiable (create_graph works to any order).
#ifndef METADPA_AUTOGRAD_OPS_H_
#define METADPA_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"

namespace metadpa {
namespace ag {

/// \brief Wraps a tensor as a constant (requires_grad=false) variable.
Variable Constant(Tensor value);

/// \brief Scalar constant convenience.
Variable ConstantScalar(float value);

// -- Elementwise binary (numpy-style broadcasting) ----------------------------

Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);

// -- Scalar variants -----------------------------------------------------------

Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);
Variable PowScalar(const Variable& a, float exponent);

// -- Elementwise unary -----------------------------------------------------------

Variable Neg(const Variable& a);
Variable Exp(const Variable& a);
/// \brief Natural log; caller must keep inputs positive (use ClampMin).
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);
/// \brief log(1 + exp(x)), numerically stable.
Variable Softplus(const Variable& a);
/// \brief |x| (subgradient 0 at 0).
Variable Abs(const Variable& a);
/// \brief Elementwise max/min of two variables (broadcasting); the gradient
/// routes to the winning branch (split on ties).
Variable Maximum(const Variable& a, const Variable& b);
Variable Minimum(const Variable& a, const Variable& b);
/// \brief Clamps values below `lo` (gradient passes only where a > lo).
Variable ClampMin(const Variable& a, float lo);

// -- Linear algebra ----------------------------------------------------------------

Variable MatMul(const Variable& a, const Variable& b);

/// \brief a·bᵀ with a (m,k), b (n,k) — equals MatMul(a, Transpose(b)) without
/// materializing the transpose. The GEMM family {MatMul, MatMulNT,
/// MatMulTN} is closed under differentiation: every backward is expressed in
/// terms of the family, so no matmul gradient (of any order) builds a
/// transpose node.
Variable MatMulNT(const Variable& a, const Variable& b);

/// \brief aᵀ·b with a (k,m), b (k,n) — equals MatMul(Transpose(a), b).
Variable MatMulTN(const Variable& a, const Variable& b);

/// \brief Fused x·w + bias with x (m,k), w (k,n), bias (n) or (1,n); equals
/// Add(MatMul(x, w), bias) in one kernel pass (see t::LinearForward).
Variable Linear(const Variable& x, const Variable& w, const Variable& bias);

Variable Transpose(const Variable& a);
Variable Reshape(const Variable& a, Shape new_shape);

// -- Reductions ----------------------------------------------------------------------

Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);
Variable Sum(const Variable& a, int64_t axis, bool keepdims);
Variable Mean(const Variable& a, int64_t axis, bool keepdims);

/// \brief Sums a broadcast result back down to `target` (differentiable).
Variable ReduceTo(const Variable& a, const Shape& target);

/// \brief Broadcasts up to `target` by multiplying with ones.
Variable ExpandTo(const Variable& a, const Shape& target);

// -- Softmax family ---------------------------------------------------------------------

/// \brief Softmax along the last axis (stable via a detached max shift).
Variable Softmax(const Variable& a);

/// \brief Log-softmax along the last axis.
Variable LogSoftmax(const Variable& a);

// -- Structure ops ----------------------------------------------------------------------

/// \brief Concatenates along axis 0 (rank 1 or 2).
Variable ConcatRows(const std::vector<Variable>& parts);

/// \brief Concatenates 2-D variables along axis 1.
Variable ConcatCols(const std::vector<Variable>& parts);

/// \brief Rows [start, start+len) of a 2-D variable (or elements of rank-1).
Variable SliceRows(const Variable& a, int64_t start, int64_t len);

/// \brief Columns [start, start+len) of a 2-D variable.
Variable SliceCols(const Variable& a, int64_t start, int64_t len);

/// \brief Gathers rows by index (duplicates allowed).
Variable IndexSelectRows(const Variable& a, std::vector<int64_t> indices);

/// \brief Scatter-adds the rows of `rows` into a zero tensor with `num_rows`
/// rows: out[indices[i]] += rows[i]. Adjoint of IndexSelectRows.
Variable ScatterAddRows(const Variable& rows, std::vector<int64_t> indices,
                        int64_t num_rows);

// -- Composite losses (kept here because they are pure ag compositions) ------------------

/// \brief mean(softplus(logits) - logits * targets): binary cross-entropy with
/// logits, valid for soft targets in [0, 1].
Variable BceWithLogits(const Variable& logits, const Variable& targets);

/// \brief mean((a - b)^2).
Variable MseLoss(const Variable& a, const Variable& b);

}  // namespace ag
}  // namespace metadpa

#endif  // METADPA_AUTOGRAD_OPS_H_
