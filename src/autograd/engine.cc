#include "autograd/engine.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "obs/obs.h"
#include "tensor/fused.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace metadpa {
namespace ag {
namespace engine {

/// Depth-first post-order over the subgraph that requires grad (iterative to
/// survive deep chains, e.g. unrolled inner loops).
void TopoSort(const NodePtr& root, std::vector<NodePtr>* order) {
  std::unordered_set<const Node*> visited;
  struct Frame {
    NodePtr node;
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  if (root && root->requires_grad) stack.push_back({root});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child == 0) {
      if (visited.count(frame.node.get())) {
        stack.pop_back();
        continue;
      }
      visited.insert(frame.node.get());
    }
    if (frame.next_child < frame.node->inputs.size()) {
      const NodePtr& child = frame.node->inputs[frame.next_child++];
      if (child && child->requires_grad && !visited.count(child.get())) {
        stack.push_back({child});
      }
    } else {
      order->push_back(frame.node);
      stack.pop_back();
    }
  }
}

namespace {

// Graphs below this node count run serially even when opts.threads asks for
// more: recruiting pool helpers costs more than the walk itself. Purely a
// scheduling decision — values are identical either way.
constexpr size_t kMinParallelNodes = 8;

/// One edge from a consumer's input position to the producer's slot table.
struct OutEdge {
  int32_t target = -1;  ///< state index of the producer; -1 = no grad flows
  uint32_t slot = 0;    ///< reserved position in the slots arena
};

/// Engine-local per-node state. The graph's Nodes are never written: all
/// mutable bookkeeping lives here, so concurrent Grad() calls sharing leaf
/// nodes (the PR-3 invariant) stay race-free. Slot and edge storage lives in
/// two flat arenas indexed from here — per-node vectors would cost two heap
/// allocations per graph node, which dominates the serial walk on the small
/// graphs the inner loops differentiate.
struct NodeState {
  Node* node = nullptr;
  uint32_t slot_begin = 0;  ///< this node's contribution slots in the arena
  uint32_t slot_count = 0;
  uint32_t edge_begin = 0;  ///< this node's out-edges, aligned with inputs
  /// Contributions not yet delivered. The release of each delivery pairs
  /// with the acquire of the decrement that reaches zero, so the executor
  /// that readies this node sees every slot write.
  std::atomic<uint32_t> pending{0};
  /// Merged gradient, set when the node executes (invalid = unreachable
  /// through differentiable paths — the serial walk's missing-map-entry).
  Variable grad;
};

/// The full engine-local execution state of one backward.
struct Graph {
  std::vector<NodeState> states;
  /// Incoming gradient contributions in fixed consumer order (the serial
  /// arrival order), all nodes back to back. An invalid Variable is an
  /// "empty" contribution: the consumer completed but no gradient flows
  /// along that edge.
  std::vector<Variable> slots;
  /// Where each consumer input's gradient goes; states[i] owns the range
  /// [edge_begin, edge_begin + node->inputs.size()).
  std::vector<OutEdge> edges;
};

/// Runtime state of one CSE class (optimizer.h): the first member to execute
/// caches its merged gradient (keeping the storage alive so the pointer
/// cannot be recycled) and its closure outputs; later members whose merged
/// gradient arrives in the SAME storage reuse the outputs instead of running
/// the closure. Same storage implies same values, and the reused outputs are
/// delivered into the member's ordinary slots, so downstream merge order —
/// and therefore every bit of every result — is unchanged. Mutex-guarded:
/// contention is per-duplicate-class and the critical section is pointer
/// bookkeeping only.
struct ClassCache {
  std::mutex mutex;
  bool set = false;
  const float* grad_ptr = nullptr;
  Variable grad_keepalive;
  std::vector<Variable> outputs;
};

/// Per-run execution state of an optimization plan.
struct PlanRt {
  const optimizer::Plan* plan = nullptr;
  /// Resolved delivery edge per chain: the slot the chain-bottom link's
  /// closure would have filled on the producer below the chain.
  std::vector<OutEdge> chain_deliver;
  std::unique_ptr<ClassCache[]> classes;
  /// Runtime counters. Values the engine produces are schedule-independent;
  /// these counters are exact in serial runs but may vary with scheduling in
  /// parallel runs (two class members racing both execute — correct, just a
  /// missed share).
  std::atomic<int64_t> cse_hits{0};
  std::atomic<int64_t> bytes_saved{0};
};

/// Drops a node's merged gradient once it can no longer be observed. When
/// this handle is the last one (node unique AND storage unaliased — Reshape
/// views and pass-through closures share storage), the buffer returns to the
/// thread-local pool immediately and is counted; otherwise reference
/// counting keeps the buffer alive for its remaining users (the PR 2
/// ownership rule: release is a handle drop, never a forced free).
void ReleaseGrad(NodeState* state, size_t my_index, PlanRt* rt) {
  if (!rt->plan->releasable[my_index] || !state->grad.is_valid()) return;
  const NodePtr& node = state->grad.node();
  if (node.use_count() == 1 && node->value.StorageUseCount() == 1) {
    rt->bytes_saved.fetch_add(
        node->value.numel() * static_cast<int64_t>(sizeof(float)),
        std::memory_order_relaxed);
  }
  state->grad = Variable();
}

/// Merges a node's slot contributions in slot order with the serial walk's
/// ownership discipline: a single contribution is aliased as-is, the first
/// collision makes a fresh sum, later arrivals accumulate in place into that
/// owned buffer (never into a closure-produced buffer, which pass-through
/// closures may alias into other slots). With create_graph the sum is an Add
/// node chain in the same order, so second-order graphs are bit-identical
/// too.
Variable MergeSlots(NodeState* state, Graph* graph, bool create_graph) {
  Variable acc;
  bool owned = false;
  for (uint32_t s = state->slot_begin; s < state->slot_begin + state->slot_count;
       ++s) {
    Variable& slot = graph->slots[s];
    if (!slot.is_valid()) continue;
    if (!acc.is_valid()) {
      acc = std::move(slot);
    } else if (create_graph) {
      acc = Add(acc, slot);
    } else if (owned) {
      Tensor sum = acc.data();  // shares storage with the owned buffer
      t::AddInPlace(&sum, slot.data());
    } else {
      acc = Variable(t::Add(acc.data(), slot.data()), /*requires_grad=*/false);
      owned = true;
    }
  }
  return acc;
}

/// Executes one ready node: merge, run the backward closure (or its fused /
/// cached replacement when a plan is active), deliver each input's
/// contribution into its reserved slot, and collect inputs whose dependency
/// count reached zero into `newly_ready`. Only `state` and the slots this
/// node reserved are written; any set of ready nodes may run concurrently.
/// `rt` may be null (unoptimized execution).
void Process(NodeState* state, Graph* graph, bool create_graph, PlanRt* rt,
             std::vector<NodeState*>* newly_ready) {
  state->grad = MergeSlots(state, graph, create_graph);
  const size_t my_index = static_cast<size_t>(state - graph->states.data());

  if (rt != nullptr) {
    // The contribution slots are dead once merged; dropping the handles now
    // lets aliased upstream buffers free as soon as their last user merges.
    for (uint32_t s = state->slot_begin; s < state->slot_begin + state->slot_count;
         ++s) {
      graph->slots[s] = Variable();
    }
    const int32_t chain_id = rt->plan->chain_of[my_index];
    if (chain_id >= 0) {
      // Fused chain tail: one pass computes what the chain's closures would
      // have produced link by link, delivered straight into the slot the
      // chain-bottom closure owned. Interior nodes never execute.
      const optimizer::Chain& chain =
          rt->plan->chains[static_cast<size_t>(chain_id)];
      const OutEdge edge = rt->chain_deliver[static_cast<size_t>(chain_id)];
      if (state->grad.is_valid()) {
        graph->slots[edge.slot] =
            Variable(t::fused::BackwardChain(state->grad.data(), chain.steps),
                     /*requires_grad=*/false);
      }
      ReleaseGrad(state, my_index, rt);
      NodeState& target = graph->states[static_cast<size_t>(edge.target)];
      if (target.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        newly_ready->push_back(&target);
      }
      return;
    }
  }

  std::vector<Variable> input_grads;
  const bool run_backward = state->grad.is_valid() && state->node->backward != nullptr;
  ClassCache* cache = nullptr;
  bool shared = false;
  if (run_backward && rt != nullptr && rt->plan->cse_class[my_index] >= 0) {
    cache = &rt->classes[static_cast<size_t>(rt->plan->cse_class[my_index])];
    const float* grad_ptr = state->grad.data().data();
    std::lock_guard<std::mutex> lock(cache->mutex);
    if (cache->set && cache->grad_ptr == grad_ptr) {
      input_grads = cache->outputs;
      shared = true;
      rt->cse_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (run_backward && !shared) {
    input_grads = state->node->backward(state->grad);
    MDPA_CHECK_EQ(input_grads.size(), state->node->inputs.size());
    if (cache != nullptr) {
      std::lock_guard<std::mutex> lock(cache->mutex);
      if (!cache->set) {
        cache->set = true;
        cache->grad_keepalive = state->grad;  // pins the storage address
        cache->grad_ptr = state->grad.data().data();
        cache->outputs = input_grads;
      }
    }
  }
  const size_t num_inputs = state->node->inputs.size();
  for (size_t i = 0; i < num_inputs; ++i) {
    const OutEdge edge = graph->edges[state->edge_begin + i];
    if (edge.target < 0) continue;
    NodeState& target = graph->states[static_cast<size_t>(edge.target)];
    if (run_backward && input_grads[i].is_valid()) {
      const NodePtr& in = state->node->inputs[i];
      MDPA_CHECK(SameShape(input_grads[i].shape(), in->value.shape()))
          << "backward of " << state->node->op_name << " produced grad of shape "
          << ShapeToString(input_grads[i].shape()) << " for input of shape "
          << ShapeToString(in->value.shape());
      // Cached outputs stay shared across class members, so copy the handle
      // instead of moving it out from under the cache.
      if (cache != nullptr) {
        graph->slots[edge.slot] = input_grads[i];
      } else {
        graph->slots[edge.slot] = std::move(input_grads[i]);
      }
    }
    // An invalid contribution leaves the slot empty but still counts down:
    // the producer must learn all its consumers finished even when no
    // gradient flows (the serial walk's unreachable-node skip).
    if (target.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      newly_ready->push_back(&target);
    }
  }
  if (rt != nullptr) ReleaseGrad(state, my_index, rt);
}

/// Shared scheduling state of one parallel backward. Guards only the queue
/// and termination flags; gradient data synchronizes through the slot/pending
/// protocol above.
struct Scheduler {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<NodeState*> ready;
  size_t remaining = 0;  ///< nodes not yet executed
  bool done = false;
  std::exception_ptr error;
  int64_t peak_ready = 0;
};

/// Claim loop run by the calling thread and every recruited helper: pop a
/// ready node, execute it, publish newly-ready nodes, until all nodes ran
/// (or a sibling failed). Blocking here is safe — the calling thread always
/// participates, so the queue cannot starve.
void ExecutorLoop(Scheduler* sched, Graph* graph, bool create_graph, PlanRt* rt) {
  std::vector<NodeState*> newly_ready;
  for (;;) {
    NodeState* state = nullptr;
    {
      std::unique_lock<std::mutex> lock(sched->mutex);
      sched->cv.wait(lock, [sched] { return sched->done || !sched->ready.empty(); });
      if (sched->done) return;
      state = sched->ready.front();
      sched->ready.pop_front();
    }
    newly_ready.clear();
    try {
      Process(state, graph, create_graph, rt, &newly_ready);
    } catch (...) {
      std::lock_guard<std::mutex> lock(sched->mutex);
      if (!sched->error) sched->error = std::current_exception();
      sched->done = true;
      sched->cv.notify_all();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(sched->mutex);
      for (NodeState* ready : newly_ready) sched->ready.push_back(ready);
      const int64_t depth = static_cast<int64_t>(sched->ready.size());
      if (depth > sched->peak_ready) sched->peak_ready = depth;
      if (--sched->remaining == 0) {
        sched->done = true;
        sched->cv.notify_all();
      } else {
        for (size_t i = 1; i < newly_ready.size(); ++i) sched->cv.notify_one();
      }
    }
  }
}

}  // namespace

std::vector<Variable> Run(const Variable& output, const std::vector<Variable>& inputs,
                          const GradOptions& opts) {
  OBS_SPAN("autograd/backward");

  std::vector<NodePtr> order;
  TopoSort(output.node(), &order);

  // --- Pre-pass: dependency counts and position-indexed slots. Walking the
  // nodes in reverse-topological (processing) order and their inputs in
  // position order assigns slots in EXACTLY the serial walk's gradient
  // arrival order — the whole determinism contract hangs on this loop.
  Graph graph;
  // vector::resize would require NodeState be movable (the atomic forbids
  // it); the count constructor only default-constructs in place.
  graph.states = std::vector<NodeState>(order.size());
  std::vector<NodeState>& states = graph.states;
  std::unordered_map<const Node*, uint32_t> index;
  index.reserve(order.size());
  size_t total_inputs = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    states[i].node = order[i].get();
    states[i].edge_begin = static_cast<uint32_t>(total_inputs);
    total_inputs += order[i]->inputs.size();
    index.emplace(order[i].get(), static_cast<uint32_t>(i));
  }
  graph.edges.resize(total_inputs);

  // Pass 1: per-producer contribution counts. The output gets one extra slot
  // for the backward seed (it has no consumers inside the walked subgraph).
  const uint32_t root_index = index.at(output.node().get());
  states[root_index].slot_count = 1;
  for (const NodePtr& node : order) {
    for (const NodePtr& in : node->inputs) {
      if (in && in->requires_grad) ++states[index.at(in.get())].slot_count;
    }
  }
  uint32_t total_slots = 0;
  for (NodeState& state : states) {
    state.slot_begin = total_slots;
    total_slots += state.slot_count;
    // The seed delivery below does not decrement, so the root starts with
    // pending already zero: ready immediately, as in the serial walk.
    state.pending.store(state.slot_count, std::memory_order_relaxed);
  }
  states[root_index].pending.store(states[root_index].slot_count - 1,
                                   std::memory_order_relaxed);
  graph.slots.resize(total_slots);
  graph.slots[states[root_index].slot_begin] =
      Variable(Tensor::Ones(output.shape()), /*requires_grad=*/opts.create_graph);

  // Pass 2: assign each (consumer, input-position) edge the producer's next
  // free slot, in reverse-topological consumer order — the serial arrival
  // order. `filled` tracks per-producer assignment; the root's seed occupies
  // its slot 0, counted by starting its fill cursor at 1.
  std::vector<uint32_t> filled(states.size(), 0);
  filled[root_index] = 1;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeState& consumer = states[index.at(it->get())];
    const std::vector<NodePtr>& node_inputs = consumer.node->inputs;
    for (size_t i = 0; i < node_inputs.size(); ++i) {
      const NodePtr& in = node_inputs[i];
      if (!in || !in->requires_grad) continue;
      const uint32_t target = index.at(in.get());
      OutEdge& edge = graph.edges[consumer.edge_begin + i];
      edge.target = static_cast<int32_t>(target);
      edge.slot = states[target].slot_begin + filled[target]++;
    }
  }

  // --- Tape optimization (optimizer.h). The plan is pure analysis over the
  // order/edge structure built above; execution consults it per node. Chain
  // interiors never execute, so they leave the node budget now. Disabled
  // under create_graph — the closures there BUILD the second-order graph and
  // must run unrewritten (see GradOptions::optimize).
  optimizer::Plan plan;
  PlanRt rt;
  PlanRt* rt_ptr = nullptr;
  size_t fused_interior_count = 0;
  if (opts.optimize && !opts.create_graph && !order.empty()) {
    std::vector<uint32_t> consumers(states.size());
    for (size_t i = 0; i < states.size(); ++i) consumers[i] = states[i].slot_count;
    consumers[root_index] -= 1;  // the backward seed is not a consumer
    std::vector<uint8_t> requested(states.size(), 0);
    for (const Variable& in : inputs) {
      if (!in.is_valid()) continue;
      auto found = index.find(in.node().get());
      if (found != index.end()) requested[found->second] = 1;
    }
    plan = optimizer::Analyze(order, consumers, requested, root_index, &index);
    rt.plan = &plan;
    rt.chain_deliver.resize(plan.chains.size());
    for (size_t c = 0; c < plan.chains.size(); ++c) {
      const optimizer::Chain& chain = plan.chains[c];
      rt.chain_deliver[c] =
          graph.edges[states[chain.bottom].edge_begin + chain.deliver_input_pos];
    }
    for (uint8_t interior : plan.fused_interior) fused_interior_count += interior;
    if (plan.num_cse_classes > 0) {
      rt.classes = std::make_unique<ClassCache[]>(plan.num_cse_classes);
    }
    rt_ptr = &rt;
  }

  // --- Execution. Every non-root node has at least one consumer in the
  // subgraph, so the root alone is ready at the start.
  const size_t to_execute = states.size() - fused_interior_count;
  int64_t peak_ready = 0;
  size_t executors = 1;
  if (opts.threads != 1 && !ThreadPool::InsideWorker() &&
      states.size() >= kMinParallelNodes) {
    executors = ThreadPool::ResolveConcurrency(opts.threads);
  }
  if (executors <= 1) {
    std::deque<NodeState*> ready;
    ready.push_back(&states[root_index]);
    std::vector<NodeState*> newly_ready;
    while (!ready.empty()) {
      NodeState* state = ready.front();
      ready.pop_front();
      newly_ready.clear();
      Process(state, &graph, opts.create_graph, rt_ptr, &newly_ready);
      for (NodeState* next : newly_ready) ready.push_back(next);
      const int64_t depth = static_cast<int64_t>(ready.size());
      if (depth > peak_ready) peak_ready = depth;
    }
  } else {
    Scheduler sched;
    sched.ready.push_back(&states[root_index]);
    sched.remaining = to_execute;
    sched.peak_ready = 1;
    ThreadPool& pool = ThreadPool::Global();
    const size_t helpers = std::min(executors - 1, pool.num_threads());
    // Helper-exit latch, not futures: Wait() returning proves no helper still
    // touches `sched`/`states` on this frame (the ParallelFor discipline).
    CountdownLatch helpers_exited(helpers);
    for (size_t h = 0; h < helpers; ++h) {
      const bool submitted =
          pool.TrySubmit([&sched, &graph, &opts, &rt_ptr, &helpers_exited] {
            ExecutorLoop(&sched, &graph, opts.create_graph, rt_ptr);
            helpers_exited.CountDown();
          });
      if (!submitted) helpers_exited.CountDown();
    }
    ExecutorLoop(&sched, &graph, opts.create_graph, rt_ptr);
    helpers_exited.Wait();
    if (sched.error) std::rethrow_exception(sched.error);
    peak_ready = sched.peak_ready;
  }

  OBS_COUNT("autograd/nodes_executed", static_cast<int64_t>(to_execute));
  OBS_GAUGE_SET("autograd/ready_peak", static_cast<double>(peak_ready));
  if (rt_ptr != nullptr) {
    OBS_COUNT("autograd/tape/nodes_fused", plan.nodes_fused);
    OBS_COUNT("autograd/tape/cse_hits",
              rt.cse_hits.load(std::memory_order_relaxed));
    OBS_COUNT("autograd/tape/bytes_saved",
              rt.bytes_saved.load(std::memory_order_relaxed));
  }

  // --- Results, aligned with `inputs` (same contract as the serial walk).
  std::vector<Variable> results;
  results.reserve(inputs.size());
  for (const Variable& in : inputs) {
    MDPA_CHECK(in.is_valid());
    auto found = index.find(in.node().get());
    const Variable* grad =
        found != index.end() && states[found->second].grad.is_valid()
            ? &states[found->second].grad
            : nullptr;
    if (grad == nullptr) {
      MDPA_CHECK(opts.allow_unused)
          << "an input is unused by the output and allow_unused is false";
      results.emplace_back(Tensor::Zeros(in.shape()),
                           /*requires_grad=*/false);
    } else if (opts.create_graph) {
      results.push_back(*grad);
    } else {
      results.push_back(grad->Detach());
    }
  }
  return results;
}

}  // namespace engine
}  // namespace ag
}  // namespace metadpa
