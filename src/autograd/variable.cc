#include "autograd/variable.h"

#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "autograd/ops.h"
#include "tensor/ops.h"

namespace metadpa {
namespace ag {
namespace {

std::atomic<int64_t> g_live_nodes{0};

}  // namespace

Node::Node() { g_live_nodes.fetch_add(1, std::memory_order_relaxed); }
Node::~Node() { g_live_nodes.fetch_sub(1, std::memory_order_relaxed); }

int64_t LiveNodeCount() { return g_live_nodes.load(std::memory_order_relaxed); }

Variable::Variable(Tensor data, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(data);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::data() const {
  MDPA_CHECK(node_ != nullptr) << "access to invalid Variable";
  return node_->value;
}

Variable Variable::Detach() const {
  return Variable(data(), /*requires_grad=*/false);
}

Tensor Variable::MutableData() {
  MDPA_CHECK(node_ != nullptr);
  MDPA_CHECK(!node_->backward) << "MutableData on a non-leaf Variable";
  return node_->value;  // a Tensor copy shares the node's storage
}

void Variable::SetData(Tensor data) {
  MDPA_CHECK(node_ != nullptr);
  MDPA_CHECK(!node_->backward) << "SetData on a non-leaf Variable";
  MDPA_CHECK(SameShape(data.shape(), node_->value.shape()))
      << "SetData shape mismatch: " << ShapeToString(data.shape()) << " vs "
      << ShapeToString(node_->value.shape());
  node_->value = std::move(data);
}

namespace {

// Depth-first post-order over the subgraph that requires grad.
void TopoSort(const NodePtr& root, std::vector<NodePtr>* order) {
  std::unordered_set<const Node*> visited;
  // Iterative DFS to survive deep chains (e.g. unrolled inner loops).
  struct Frame {
    NodePtr node;
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  if (root && root->requires_grad) stack.push_back({root});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child == 0) {
      if (visited.count(frame.node.get())) {
        stack.pop_back();
        continue;
      }
      visited.insert(frame.node.get());
    }
    if (frame.next_child < frame.node->inputs.size()) {
      const NodePtr& child = frame.node->inputs[frame.next_child++];
      if (child && child->requires_grad && !visited.count(child.get())) {
        stack.push_back({child});
      }
    } else {
      order->push_back(frame.node);
      stack.pop_back();
    }
  }
}

}  // namespace

std::vector<Variable> Grad(const Variable& output, const std::vector<Variable>& inputs,
                           const GradOptions& opts) {
  MDPA_CHECK(output.is_valid());
  MDPA_CHECK_EQ(output.numel(), 1) << "Grad requires a scalar output";
  MDPA_CHECK(output.requires_grad())
      << "output does not require grad; no graph to differentiate";

  std::vector<NodePtr> order;
  TopoSort(output.node(), &order);

  // Accumulated gradient per node, built with differentiable ops.
  std::unordered_map<const Node*, Variable> grads;
  grads[output.node().get()] = Variable(Tensor::Ones(output.shape()),
                                        /*requires_grad=*/opts.create_graph);

  // Without create_graph the accumulated sums need no tape, so multi-consumer
  // nodes accumulate in place instead of allocating an Add node per consumer.
  // A buffer is only written through once it is exclusively ours: the first
  // collision makes a fresh t::Add result (recorded in `owned`), later
  // arrivals AddInPlace into it. Buffers produced by backward closures are
  // never mutated — pass-through closures may alias them into other slots.
  std::unordered_set<const Node*> owned;

  // Reverse topological order: every node is processed after all its users.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodePtr& node = *it;
    auto found = grads.find(node.get());
    if (found == grads.end()) continue;  // unreachable from output
    const Variable grad_out = found->second;
    if (!node->backward) continue;  // leaf
    std::vector<Variable> input_grads = node->backward(grad_out);
    MDPA_CHECK_EQ(input_grads.size(), node->inputs.size());
    for (size_t i = 0; i < input_grads.size(); ++i) {
      const NodePtr& in = node->inputs[i];
      if (!in || !in->requires_grad || !input_grads[i].is_valid()) continue;
      MDPA_CHECK(SameShape(input_grads[i].shape(), in->value.shape()))
          << "backward of " << node->op_name << " produced grad of shape "
          << ShapeToString(input_grads[i].shape()) << " for input of shape "
          << ShapeToString(in->value.shape());
      auto slot = grads.find(in.get());
      if (slot == grads.end()) {
        grads[in.get()] = input_grads[i];
      } else if (opts.create_graph) {
        slot->second = Add(slot->second, input_grads[i]);
      } else if (owned.count(in.get())) {
        Tensor acc = slot->second.data();  // shares storage with the owned sum
        t::AddInPlace(&acc, input_grads[i].data());
      } else {
        slot->second = Variable(t::Add(slot->second.data(), input_grads[i].data()),
                                /*requires_grad=*/false);
        owned.insert(in.get());
      }
    }
  }

  std::vector<Variable> results;
  results.reserve(inputs.size());
  for (const Variable& in : inputs) {
    MDPA_CHECK(in.is_valid());
    auto found = grads.find(in.node().get());
    if (found == grads.end()) {
      MDPA_CHECK(opts.allow_unused)
          << "an input is unused by the output and allow_unused is false";
      results.emplace_back(Tensor::Zeros(in.shape()),
                           /*requires_grad=*/false);
    } else if (opts.create_graph) {
      results.push_back(found->second);
    } else {
      results.push_back(found->second.Detach());
    }
  }
  return results;
}

}  // namespace ag
}  // namespace metadpa
