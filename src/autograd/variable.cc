#include "autograd/variable.h"

#include <atomic>

#include "autograd/engine.h"

namespace metadpa {
namespace ag {
namespace {

std::atomic<int64_t> g_live_nodes{0};

}  // namespace

Node::Node() { g_live_nodes.fetch_add(1, std::memory_order_relaxed); }
Node::~Node() { g_live_nodes.fetch_sub(1, std::memory_order_relaxed); }

int64_t LiveNodeCount() { return g_live_nodes.load(std::memory_order_relaxed); }

Variable::Variable(Tensor data, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(data);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::data() const {
  MDPA_CHECK(node_ != nullptr) << "access to invalid Variable";
  return node_->value;
}

Variable Variable::Detach() const {
  return Variable(data(), /*requires_grad=*/false);
}

Tensor Variable::MutableData() {
  MDPA_CHECK(node_ != nullptr);
  MDPA_CHECK(!node_->backward) << "MutableData on a non-leaf Variable";
  return node_->value;  // a Tensor copy shares the node's storage
}

void Variable::SetData(Tensor data) {
  MDPA_CHECK(node_ != nullptr);
  MDPA_CHECK(!node_->backward) << "SetData on a non-leaf Variable";
  MDPA_CHECK(SameShape(data.shape(), node_->value.shape()))
      << "SetData shape mismatch: " << ShapeToString(data.shape()) << " vs "
      << ShapeToString(node_->value.shape());
  node_->value = std::move(data);
}

std::vector<Variable> Grad(const Variable& output, const std::vector<Variable>& inputs,
                           const GradOptions& opts) {
  MDPA_CHECK(output.is_valid());
  MDPA_CHECK_EQ(output.numel(), 1) << "Grad requires a scalar output";
  MDPA_CHECK(output.requires_grad())
      << "output does not require grad; no graph to differentiate";
  return engine::Run(output, inputs, opts);
}

}  // namespace ag
}  // namespace metadpa
