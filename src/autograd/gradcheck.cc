#include "autograd/gradcheck.h"

#include <cmath>

#include "autograd/ops.h"

namespace metadpa {
namespace ag {
namespace {

std::vector<Variable> MakeLeaves(const std::vector<Tensor>& points) {
  std::vector<Variable> leaves;
  leaves.reserve(points.size());
  for (const Tensor& p : points) leaves.emplace_back(p.Clone(), /*requires_grad=*/true);
  return leaves;
}

double EvalAtPerturbed(const ScalarFn& fn, const std::vector<Tensor>& points,
                       size_t which, int64_t elem, double delta) {
  std::vector<Variable> leaves;
  leaves.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    Tensor p = points[i].Clone();
    if (i == which) p.at(elem) += static_cast<float>(delta);
    leaves.emplace_back(std::move(p), /*requires_grad=*/true);
  }
  return static_cast<double>(fn(leaves).item());
}

}  // namespace

double MaxGradError(const ScalarFn& fn, const std::vector<Tensor>& points, double eps) {
  std::vector<Variable> leaves = MakeLeaves(points);
  Variable out = fn(leaves);
  std::vector<Variable> grads = Grad(out, leaves);

  double max_err = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    for (int64_t e = 0; e < points[i].numel(); ++e) {
      const double plus = EvalAtPerturbed(fn, points, i, e, eps);
      const double minus = EvalAtPerturbed(fn, points, i, e, -eps);
      const double numeric = (plus - minus) / (2.0 * eps);
      const double analytic = static_cast<double>(grads[i].data().at(e));
      max_err = std::max(max_err, std::fabs(numeric - analytic));
    }
  }
  return max_err;
}

double MaxSecondOrderError(const ScalarFn& fn, const std::vector<Tensor>& points,
                           Rng* rng, double eps) {
  // Fixed random directions, one per input.
  std::vector<Tensor> dirs;
  dirs.reserve(points.size());
  for (const Tensor& p : points) dirs.push_back(Tensor::RandNormal(p.shape(), rng));

  // h(x) = sum_i <grad_i f(x), v_i>, computed with create_graph=true.
  auto h = [&fn, &dirs](const std::vector<Variable>& leaves) -> Variable {
    Variable out = fn(leaves);
    GradOptions opts;
    opts.create_graph = true;
    std::vector<Variable> grads = Grad(out, leaves, opts);
    Variable acc = ConstantScalar(0.0f);
    for (size_t i = 0; i < grads.size(); ++i) {
      acc = Add(acc, SumAll(Mul(grads[i], Constant(dirs[i]))));
    }
    return acc;
  };

  return MaxGradError(h, points, eps);
}

}  // namespace ag
}  // namespace metadpa
