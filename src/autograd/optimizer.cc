#include "autograd/optimizer.h"

#include <array>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "autograd/engine.h"
#include "util/status.h"

namespace metadpa {
namespace ag {
namespace optimizer {
namespace {

using t::fused::Step;
using t::fused::StepKind;

float AttrFloat(uint64_t a) {
  const uint32_t bits = static_cast<uint32_t>(a);
  float f = 0.0f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

/// Classification of one node as a fusable backward link: an elementwise op
/// with exactly one differentiable input and no shape change, whose backward
/// closure is (per element) a pure transform of the incoming gradient. The
/// Step table below replicates each closure's exact scalar op sequence — see
/// the bit-identity argument in tensor/fused.h.
struct LinkInfo {
  bool is_link = false;
  int diff_pos = 0;          ///< input position the gradient flows to
  std::array<Step, 2> steps;  ///< closure as 1–2 fused steps
  int num_steps = 0;
};

LinkInfo ClassifyLink(const Node* n) {
  LinkInfo li;
  if (n->backward == nullptr) return li;
  const auto& ins = n->inputs;
  auto emit = [&li](Step s) { li.steps[li.num_steps++] = s; };
  auto unary_aux = [&](StepKind k, float s0 = 0.0f, float s1 = 0.0f) {
    li.is_link = true;
    li.diff_pos = 0;
    emit({k, s0, s1, n->inputs[0]->value.data(), nullptr});
  };
  switch (n->op) {
    case OpId::kAddScalar:
      li.is_link = true;
      emit({StepKind::kIdentity, 0, 0, nullptr, nullptr});
      return li;
    case OpId::kNeg:
      li.is_link = true;
      emit({StepKind::kNeg, 0, 0, nullptr, nullptr});
      return li;
    case OpId::kMulScalar:
      li.is_link = true;
      emit({StepKind::kScale, AttrFloat(n->attrs[0]), 0, nullptr, nullptr});
      return li;
    case OpId::kPowScalar: {
      // Closure: Mul(g, MulScalar(PowScalar(a, e - 1.0f), e)).
      const float e = AttrFloat(n->attrs[0]);
      unary_aux(StepKind::kPowGrad, e - 1.0f, e);
      return li;
    }
    case OpId::kExp:
      unary_aux(StepKind::kExpGrad);
      return li;
    case OpId::kLog:
      // Closure: Div(g, a) — same-shape, so ReduceTo is the identity.
      unary_aux(StepKind::kDivAux);
      return li;
    case OpId::kSqrt:
      // Closure: Div(MulScalar(g, 0.5f), Sqrt(a)).
      li.is_link = true;
      li.diff_pos = 0;
      emit({StepKind::kScale, 0.5f, 0, nullptr, nullptr});
      emit({StepKind::kDivSqrtAux, 0, 0, n->inputs[0]->value.data(), nullptr});
      return li;
    case OpId::kSigmoid:
      unary_aux(StepKind::kSigmoidGrad);
      return li;
    case OpId::kTanh:
      unary_aux(StepKind::kTanhGrad);
      return li;
    case OpId::kRelu:
      unary_aux(StepKind::kReluMask);
      return li;
    case OpId::kSoftplus:
      unary_aux(StepKind::kSoftplusGrad);
      return li;
    case OpId::kAbs:
      unary_aux(StepKind::kAbsSign);
      return li;
    case OpId::kClampMin:
      unary_aux(StepKind::kClampMinMask, AttrFloat(n->attrs[0]));
      return li;
    case OpId::kAdd:
    case OpId::kSub:
    case OpId::kMul:
    case OpId::kDiv: {
      // Fusable only when exactly one side is differentiable and neither
      // side broadcasts (same shapes → the closure's ReduceTo is the
      // identity and the gradient is a pure elementwise transform).
      if (ins.size() != 2) return li;
      const bool g0 = ins[0] && ins[0]->requires_grad;
      const bool g1 = ins[1] && ins[1]->requires_grad;
      if (g0 == g1) return li;
      if (!SameShape(n->value.shape(), ins[0]->value.shape()) ||
          !SameShape(n->value.shape(), ins[1]->value.shape())) {
        return li;
      }
      const int d = g0 ? 0 : 1;
      li.diff_pos = d;
      li.is_link = true;
      switch (n->op) {
        case OpId::kAdd:
          emit({StepKind::kIdentity, 0, 0, nullptr, nullptr});
          break;
        case OpId::kSub:
          if (d == 0) {
            emit({StepKind::kIdentity, 0, 0, nullptr, nullptr});
          } else {
            emit({StepKind::kNeg, 0, 0, nullptr, nullptr});
          }
          break;
        case OpId::kMul:
          emit({StepKind::kMulAux, 0, 0, ins[1 - d]->value.data(), nullptr});
          break;
        default:  // kDiv
          if (d == 0) {
            // Closure: Div(g, b).
            emit({StepKind::kDivAux, 0, 0, ins[1]->value.data(), nullptr});
          } else {
            // Closure: Neg(Div(Mul(g, a), Mul(b, b))).
            emit({StepKind::kDivGradB, 0, 0, ins[0]->value.data(),
                  ins[1]->value.data()});
          }
          break;
      }
      return li;
    }
    default:
      return li;
  }
}

/// CSE value-numbering key: the op, its scalar attrs, and the identity of
/// each input — value numbers for in-subgraph inputs (so duplicate detection
/// cascades), raw node pointers for constants and detached leaves. Inputs
/// are stored inline (no allocation on the per-backward analysis path);
/// nodes with more than kMaxVNInputs inputs are simply not keyed — they stay
/// singletons, which is correct, just a skipped sharing opportunity.
constexpr size_t kMaxVNInputs = 4;

struct VNKey {
  uint8_t op = 0;
  uint8_t nattrs = 0;
  uint8_t nins = 0;
  std::array<uint64_t, 3> attrs = {0, 0, 0};
  std::array<uint64_t, kMaxVNInputs> ins = {0, 0, 0, 0};

  bool operator==(const VNKey& o) const {
    return op == o.op && nattrs == o.nattrs && nins == o.nins &&
           attrs == o.attrs && ins == o.ins;
  }
};

struct VNKeyHash {
  size_t operator()(const VNKey& k) const {
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(k.op);
    mix(k.nattrs);
    mix(k.nins);
    for (uint64_t a : k.attrs) mix(a);
    for (size_t i = 0; i < k.nins; ++i) mix(k.ins[i]);
    return static_cast<size_t>(h);
  }
};

}  // namespace

Plan Analyze(const std::vector<NodePtr>& order,
             const std::vector<uint32_t>& consumer_counts,
             const std::vector<uint8_t>& requested, size_t root_index,
             const std::unordered_map<const Node*, uint32_t>* index) {
  const size_t n = order.size();
  Plan plan;
  plan.fused_interior.assign(n, 0);
  plan.chain_of.assign(n, -1);
  plan.cse_class.assign(n, -1);
  plan.releasable.assign(n, 0);
  if (n == 0) return plan;
  MDPA_CHECK_EQ(consumer_counts.size(), n);
  MDPA_CHECK_EQ(requested.size(), n);

  std::unordered_map<const Node*, uint32_t> own_index;
  if (index == nullptr) {
    own_index.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      own_index.emplace(order[i].get(), static_cast<uint32_t>(i));
    }
    index = &own_index;
  }

  // --- Fusion: classify links, then grow maximal chains top-down. `order` is
  // post-order (producers first), so iterating in reverse visits consumers
  // before producers and each candidate tail claims its whole chain before
  // any of its interiors is considered as a tail itself.
  std::vector<LinkInfo> links(n);
  for (size_t i = 0; i < n; ++i) links[i] = ClassifyLink(order[i].get());

  std::vector<uint8_t> in_chain(n, 0);  // tail or interior of some chain
  auto interior_ok = [&](uint32_t idx) {
    // An interior node's gradient is never materialized, so it must have
    // exactly one consumer (the link above it), must not be wanted by the
    // caller, and must not be the root (whose seed arrives from outside).
    return links[idx].is_link && consumer_counts[idx] == 1 && !requested[idx] &&
           idx != root_index && !in_chain[idx];
  };
  for (size_t i = n; i-- > 0;) {
    if (in_chain[i] || !links[i].is_link) continue;
    std::vector<uint32_t> interiors;
    uint32_t cur = static_cast<uint32_t>(i);
    for (;;) {
      const Node* diff_in = order[cur]->inputs[links[cur].diff_pos].get();
      const uint32_t p = index->at(diff_in);
      if (!interior_ok(p)) break;
      interiors.push_back(p);
      cur = p;
    }
    if (interiors.empty()) continue;
    Chain chain;
    chain.tail = static_cast<uint32_t>(i);
    chain.bottom = interiors.back();
    chain.deliver_input_pos = static_cast<uint32_t>(links[chain.bottom].diff_pos);
    auto append_steps = [&chain, &links](uint32_t idx) {
      for (int s = 0; s < links[idx].num_steps; ++s) {
        chain.steps.push_back(links[idx].steps[s]);
      }
    };
    append_steps(chain.tail);
    for (uint32_t p : interiors) append_steps(p);
    plan.chain_of[i] = static_cast<int32_t>(plan.chains.size());
    in_chain[i] = 1;
    for (uint32_t p : interiors) {
      plan.fused_interior[p] = 1;
      in_chain[p] = 1;
    }
    plan.nodes_fused += static_cast<int64_t>(1 + interiors.size());
    plan.chains.push_back(std::move(chain));
  }

  // --- CSE: value numbering in producer order so duplicate detection
  // cascades through duplicate subgraphs. Chain participants are excluded
  // from classes — their closures don't run, so there is nothing to share.
  std::vector<uint32_t> vn(n);
  std::unordered_map<VNKey, uint32_t, VNKeyHash> table;
  table.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    vn[i] = static_cast<uint32_t>(i);
    const Node* nd = order[i].get();
    if (!nd->cse_safe || nd->op == OpId::kLeaf || nd->backward == nullptr) continue;
    VNKey key;
    key.op = static_cast<uint8_t>(nd->op);
    key.nattrs = nd->attr_count;
    for (int a = 0; a < 3; ++a) key.attrs[static_cast<size_t>(a)] = nd->attrs[a];
    bool keyable = nd->inputs.size() <= kMaxVNInputs;
    for (const NodePtr& in : nd->inputs) {
      if (!keyable) break;
      if (!in) {
        keyable = false;
        break;
      }
      if (in->requires_grad) {
        // In-subgraph input: key on its value number (top bit tags the
        // namespace so a VN can never collide with a pointer).
        key.ins[key.nins++] = (1ull << 63) | vn[index->at(in.get())];
      } else {
        key.ins[key.nins++] = reinterpret_cast<uint64_t>(in.get());
      }
    }
    if (!keyable) continue;
    auto inserted = table.emplace(std::move(key), static_cast<uint32_t>(i));
    vn[i] = inserted.first->second;
  }
  std::unordered_map<uint32_t, std::vector<uint32_t>> groups;
  for (size_t i = 0; i < n; ++i) {
    if (in_chain[i]) continue;
    groups[vn[i]].push_back(static_cast<uint32_t>(i));
  }
  for (auto& entry : groups) {
    // Un-keyable nodes carry vn[i]==i and can only ever be singletons here.
    std::vector<uint32_t>& members = entry.second;
    if (members.size() < 2) continue;
    const int32_t id = static_cast<int32_t>(plan.num_cse_classes++);
    for (uint32_t m : members) plan.cse_class[m] = id;
  }

  // --- Eager release: every gradient the caller did not ask for is dead the
  // moment its node finishes executing. Interiors never materialize one.
  for (size_t i = 0; i < n; ++i) {
    if (requested[i] || plan.fused_interior[i]) continue;
    plan.releasable[i] = 1;
    ++plan.release_planned;
  }
  return plan;
}

Plan AnalyzeTape(const Variable& output, const std::vector<Variable>& inputs) {
  std::vector<NodePtr> order;
  engine::TopoSort(output.node(), &order);
  const size_t n = order.size();
  if (n == 0) return Analyze(order, {}, {}, 0);
  std::unordered_map<const Node*, uint32_t> index;
  index.reserve(n);
  for (size_t i = 0; i < n; ++i) index.emplace(order[i].get(), static_cast<uint32_t>(i));
  std::vector<uint32_t> consumers(n, 0);
  for (const NodePtr& node : order) {
    for (const NodePtr& in : node->inputs) {
      if (in && in->requires_grad) ++consumers[index.at(in.get())];
    }
  }
  std::vector<uint8_t> requested(n, 0);
  for (const Variable& in : inputs) {
    if (!in.is_valid()) continue;
    auto found = index.find(in.node().get());
    if (found != index.end()) requested[found->second] = 1;
  }
  return Analyze(order, consumers, requested, index.at(output.node().get()));
}

}  // namespace optimizer
}  // namespace ag
}  // namespace metadpa
