#include "eval/recommend.h"

#include <algorithm>
#include <functional>

#include "util/status.h"

namespace metadpa {
namespace eval {
namespace {

using ScoreFn = std::function<std::vector<double>(const data::EvalCase&,
                                                  const std::vector<int64_t>&)>;

std::vector<Recommendation> TopKImpl(const ScoreFn& score, int64_t user,
                                     const std::vector<int64_t>& candidates,
                                     const std::vector<int64_t>& support_items,
                                     int k) {
  if (k <= 0) return {};
  // Dedup + support exclusion in one O(n) pass over an epoch-stamped dense
  // array instead of hash sets: item ids are table rows, so for the common
  // dense-id case a reusable thread-local stamp buffer replaces ~2 hash
  // probes per candidate (tens of microseconds per serving request at
  // candidate counts in the hundreds) with one indexed load/store. Stamping
  // the support ids first makes them read as already-seen. First-occurrence
  // order is preserved; ids outside the dense range fall back to sorting,
  // which yields the same top-k because the final (score desc, item asc)
  // ordering is a total order over the unique (item, score) pairs.
  constexpr int64_t kDenseIdLimit = int64_t{1} << 22;
  int64_t max_id = -1;
  for (int64_t item : candidates) max_id = std::max(max_id, item);
  for (int64_t item : support_items) max_id = std::max(max_id, item);
  bool dense = max_id < kDenseIdLimit;
  for (int64_t item : candidates) dense = dense && item >= 0;
  for (int64_t item : support_items) dense = dense && item >= 0;

  std::vector<int64_t> items;
  items.reserve(candidates.size());
  if (dense) {
    static thread_local std::vector<uint32_t> stamp;
    static thread_local uint32_t epoch = 0;
    if (static_cast<int64_t>(stamp.size()) <= max_id) stamp.resize(max_id + 1, 0);
    if (++epoch == 0) {  // epoch wrapped: every stale stamp must be cleared
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
    for (int64_t item : support_items) stamp[item] = epoch;
    for (int64_t item : candidates) {
      if (stamp[item] == epoch) continue;  // support item or repeated id
      stamp[item] = epoch;
      items.push_back(item);
    }
  } else {
    items = candidates;
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    if (!support_items.empty()) {
      std::vector<int64_t> known(support_items.begin(), support_items.end());
      std::sort(known.begin(), known.end());
      items.erase(std::remove_if(items.begin(), items.end(),
                                 [&known](int64_t item) {
                                   return std::binary_search(known.begin(),
                                                             known.end(), item);
                                 }),
                  items.end());
    }
  }
  if (items.empty()) return {};

  data::EvalCase eval_case;
  eval_case.user = user;
  eval_case.support_items = support_items;
  std::vector<double> scores = score(eval_case, items);
  MDPA_CHECK_EQ(scores.size(), items.size());

  std::vector<Recommendation> recs;
  recs.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) recs.push_back({items[i], scores[i]});
  const size_t top = std::min<size_t>(static_cast<size_t>(k), recs.size());
  std::partial_sort(recs.begin(), recs.begin() + top, recs.end(),
                    [](const Recommendation& a, const Recommendation& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.item < b.item;
                    });
  recs.resize(top);
  return recs;
}

}  // namespace

std::vector<Recommendation> RecommendTopK(Recommender* model, int64_t user,
                                          const std::vector<int64_t>& candidates,
                                          const std::vector<int64_t>& support_items,
                                          int k) {
  MDPA_CHECK(model != nullptr);
  return TopKImpl(
      [model](const data::EvalCase& eval_case, const std::vector<int64_t>& items) {
        return model->ScoreCase(eval_case, items);
      },
      user, candidates, support_items, k);
}

std::vector<Recommendation> RecommendTopK(CaseScorer* scorer, int64_t user,
                                          const std::vector<int64_t>& candidates,
                                          const std::vector<int64_t>& support_items,
                                          int k) {
  MDPA_CHECK(scorer != nullptr);
  return TopKImpl(
      [scorer](const data::EvalCase& eval_case, const std::vector<int64_t>& items) {
        return scorer->Score(eval_case, items);
      },
      user, candidates, support_items, k);
}

std::vector<Recommendation> RecommendForUser(Recommender* model,
                                             const data::DatasetSplits& splits,
                                             const data::DomainData& domain,
                                             int64_t user, int k) {
  std::vector<int64_t> support;
  for (int32_t item : domain.ratings.ItemsOf(user)) support.push_back(item);
  return RecommendTopK(model, user, splits.existing_items, support, k);
}

}  // namespace eval
}  // namespace metadpa
