#include "eval/recommend.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "util/status.h"

namespace metadpa {
namespace eval {
namespace {

using ScoreFn = std::function<std::vector<double>(const data::EvalCase&,
                                                  const std::vector<int64_t>&)>;

std::vector<Recommendation> TopKImpl(const ScoreFn& score, int64_t user,
                                     const std::vector<int64_t>& candidates,
                                     const std::vector<int64_t>& support_items,
                                     int k) {
  if (k <= 0) return {};
  std::unordered_set<int64_t> known(support_items.begin(), support_items.end());
  std::unordered_set<int64_t> seen;
  seen.reserve(candidates.size());
  std::vector<int64_t> items;
  items.reserve(candidates.size());
  for (int64_t item : candidates) {
    if (known.count(item)) continue;
    if (!seen.insert(item).second) continue;  // repeated candidate id
    items.push_back(item);
  }
  if (items.empty()) return {};

  data::EvalCase eval_case;
  eval_case.user = user;
  eval_case.support_items = support_items;
  std::vector<double> scores = score(eval_case, items);
  MDPA_CHECK_EQ(scores.size(), items.size());

  std::vector<Recommendation> recs;
  recs.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) recs.push_back({items[i], scores[i]});
  const size_t top = std::min<size_t>(static_cast<size_t>(k), recs.size());
  std::partial_sort(recs.begin(), recs.begin() + top, recs.end(),
                    [](const Recommendation& a, const Recommendation& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.item < b.item;
                    });
  recs.resize(top);
  return recs;
}

}  // namespace

std::vector<Recommendation> RecommendTopK(Recommender* model, int64_t user,
                                          const std::vector<int64_t>& candidates,
                                          const std::vector<int64_t>& support_items,
                                          int k) {
  MDPA_CHECK(model != nullptr);
  return TopKImpl(
      [model](const data::EvalCase& eval_case, const std::vector<int64_t>& items) {
        return model->ScoreCase(eval_case, items);
      },
      user, candidates, support_items, k);
}

std::vector<Recommendation> RecommendTopK(CaseScorer* scorer, int64_t user,
                                          const std::vector<int64_t>& candidates,
                                          const std::vector<int64_t>& support_items,
                                          int k) {
  MDPA_CHECK(scorer != nullptr);
  return TopKImpl(
      [scorer](const data::EvalCase& eval_case, const std::vector<int64_t>& items) {
        return scorer->Score(eval_case, items);
      },
      user, candidates, support_items, k);
}

std::vector<Recommendation> RecommendForUser(Recommender* model,
                                             const data::DatasetSplits& splits,
                                             const data::DomainData& domain,
                                             int64_t user, int k) {
  std::vector<int64_t> support;
  for (int32_t item : domain.ratings.ItemsOf(user)) support.push_back(item);
  return RecommendTopK(model, user, splits.existing_items, support, k);
}

}  // namespace eval
}  // namespace metadpa
