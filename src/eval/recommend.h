// End-user recommendation API: the paper's deliverable is "recommend k items
// with top-k ratings" to a user (§III-A); this adapts any Recommender to
// that interface.
#ifndef METADPA_EVAL_RECOMMEND_H_
#define METADPA_EVAL_RECOMMEND_H_

#include <vector>

#include "eval/recommender.h"

namespace metadpa {
namespace eval {

/// \brief One recommended item with its predicted preference score.
struct Recommendation {
  int64_t item = -1;
  double score = 0.0;
};

/// \brief Scores `candidates` for `user` with the model and returns the top-k
/// by score (descending; ties broken by item id for determinism).
/// `support_items` is the user's observed positives, forwarded to the model
/// for per-case adaptation (meta methods) and excluded from the results.
///
/// Robust against the inputs an online request path delivers at rate:
/// repeated candidate ids are scored once and appear at most once in the
/// result, k <= 0 returns empty, and k larger than the candidate pool
/// returns every scorable candidate — always exactly
/// min(max(k, 0), |unique candidates not in support|) results.
std::vector<Recommendation> RecommendTopK(Recommender* model, int64_t user,
                                          const std::vector<int64_t>& candidates,
                                          const std::vector<int64_t>& support_items,
                                          int k);

/// \brief Same through a per-thread CaseScorer handle (see
/// Recommender::CloneForScoring): what the scoring server calls on its worker
/// threads. Bit-identical to the Recommender overload for the same model.
std::vector<Recommendation> RecommendTopK(CaseScorer* scorer, int64_t user,
                                          const std::vector<int64_t>& candidates,
                                          const std::vector<int64_t>& support_items,
                                          int k);

/// \brief Convenience: recommends existing items to a user out of a splits
/// object, excluding everything the user already interacted with.
std::vector<Recommendation> RecommendForUser(Recommender* model,
                                             const data::DatasetSplits& splits,
                                             const data::DomainData& domain,
                                             int64_t user, int k);

}  // namespace eval
}  // namespace metadpa

#endif  // METADPA_EVAL_RECOMMEND_H_
