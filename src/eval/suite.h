// Factory for the full method suite of the paper's comparison (Table III):
// NeuMF, MeLU, CoNN, TDAR, CATN, DAML, MetaCF and MetaDPA (plus its ablation
// variants), each with tuned default configurations. Used by the benchmark
// harness and the examples so every experiment builds the same models.
#ifndef METADPA_EVAL_SUITE_H_
#define METADPA_EVAL_SUITE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/metadpa.h"
#include "eval/recommender.h"
#include "obs/health.h"
#include "obs/manifest.h"
#include "obs/telemetry.h"
#include "util/status.h"

namespace metadpa {
namespace suite {

/// \brief Global knobs for a whole experiment run.
struct SuiteOptions {
  /// Scales every method's training epochs (1.0 = defaults; benches use
  /// smaller values for quick runs).
  double effort = 1.0;
  uint64_t seed = 2022;
  /// Concurrent tasks/mini-batches inside the meta-trained methods' training
  /// loops (MamlConfig::threads / AdaptationConfig::threads: 1 = serial,
  /// 0 = all cores). Training results are bit-identical for any value.
  int train_threads = 1;
  /// Concurrent executors INSIDE each backward walk
  /// (ag::GradOptions::threads via MamlConfig::grad_threads /
  /// AdaptationConfig::grad_threads; same 1/0/N convention). Bit-identical
  /// for any value; composes with train_threads (backwards issued from pool
  /// workers degrade to serial).
  int grad_threads = 1;
  /// Tape optimizer inside every training backward (MamlConfig::tape_opt /
  /// AdaptationConfig::tape_opt -> ag::GradOptions::optimize): fused
  /// elementwise backward chains, shared duplicate closures, eager buffer
  /// release. Bit-identical results for any setting; recorded in the run
  /// manifest.
  bool tape_opt = false;
  /// When non-empty, SetupObservability enables tracing/metrics and
  /// ExportObservability writes a chrome://tracing JSON here.
  std::string trace_out;
  /// When non-empty, ExportObservability writes the metrics + span summary
  /// tables here. Any observability output alone turns instrumentation on.
  std::string metrics_out;
  /// When non-empty, StartTelemetry appends JSONL registry snapshots here
  /// while the run executes and writes a run manifest to
  /// "<telemetry_out>.manifest.json".
  std::string telemetry_out;
  /// Background sampling period; 0 keeps only the forced epoch-boundary
  /// samples (deterministic sample count — what the tests use).
  int telemetry_interval_ms = 250;
  /// Training-health watchdog policy applied to every method's training
  /// loops (MamlConfig::health / AdaptationConfig::health).
  obs::HealthPolicy watchdog = obs::HealthPolicy::kOff;
};

/// \brief One constructible method.
struct MethodSpec {
  std::string name;
  std::function<std::unique_ptr<eval::Recommender>()> make;
};

/// \brief The eight methods of Table III, in the paper's row order.
std::vector<MethodSpec> AllMethods(const SuiteOptions& options);

/// \brief Builds one method by its Table III name ("NeuMF", ..., "MetaDPA");
/// returns nullptr for unknown names.
std::unique_ptr<eval::Recommender> MakeMethod(const std::string& name,
                                              const SuiteOptions& options);

/// \brief The tuned MetaDPA configuration (shared with ablations / sweeps).
core::MetaDpaConfig DefaultMetaDpaConfig(const SuiteOptions& options);

/// \brief Scales an epoch count by the effort knob (at least 1).
int ScaledEpochs(int epochs, double effort);

/// \brief Enables instrumentation when the options ask for any observability
/// output: turns obs on, starts thread-pool idle timing, and registers the
/// thread-pool / tensor-buffer-pool stats providers. No-op (and obs stays
/// off) when both output paths are empty. Safe to call repeatedly.
void SetupObservability(const SuiteOptions& options);

/// \brief Writes the requested observability outputs (trace JSON and/or the
/// metrics + span summary tables). OK when neither output was requested.
Status ExportObservability(const SuiteOptions& options);

/// \brief Run provenance: build + host sections (obs) plus the resolved
/// SuiteOptions and the tuned MetaDPA configuration derived from them.
obs::RunManifest BuildRunManifest(const SuiteOptions& options);

/// \brief Starts the telemetry sampler and writes the run manifest to
/// "<telemetry_out>.manifest.json". Returns nullptr when telemetry_out is
/// empty. `manifest` overrides the default BuildRunManifest(options) document
/// (callers add e.g. a "data" section first); pass nullptr for the default.
/// Destroy (or Stop()) the sampler after training finishes and before
/// ExportObservability. A manifest write failure is reported on stderr but
/// does not block the run.
std::unique_ptr<obs::TelemetrySampler> StartTelemetry(
    const SuiteOptions& options, const obs::RunManifest* manifest = nullptr);

}  // namespace suite
}  // namespace metadpa

#endif  // METADPA_EVAL_SUITE_H_
