#include "eval/recommender.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace metadpa {
namespace eval {
namespace {

/// Everything one case contributes to a ScenarioResult; computed in parallel,
/// merged serially in case order so float accumulation order never changes.
struct CaseOutcome {
  metrics::RankingMetrics at_k;
  std::vector<double> curve;
};

CaseOutcome ComputeOutcome(CaseScorer* scorer, const data::EvalCase& eval_case,
                           const EvalOptions& options) {
  OBS_SPAN("eval/case");
  // Item list: positive first, then the sampled negatives.
  std::vector<int64_t> items;
  items.reserve(1 + eval_case.negatives.size());
  items.push_back(eval_case.test_positive);
  items.insert(items.end(), eval_case.negatives.begin(), eval_case.negatives.end());

  std::vector<double> scores = scorer->Score(eval_case, items);
  if (scores.size() != items.size()) {
    // Thrown (not checked) so a buggy model fails the sweep loudly without
    // aborting the process; ParallelFor drains sibling shards first.
    throw std::runtime_error("ScoreCase returned " + std::to_string(scores.size()) +
                             " scores for " + std::to_string(items.size()) + " items");
  }
  const double positive_score = scores[0];
  std::vector<double> negative_scores(scores.begin() + 1, scores.end());

  CaseOutcome outcome;
  outcome.at_k = metrics::EvaluateCase(positive_score, negative_scores, options.k);
  outcome.curve =
      metrics::NdcgCurve(positive_score, negative_scores, options.max_curve_k);
  OBS_COUNT("eval/cases", 1);
  // Rank distribution, recomputed from the already-produced scores: the
  // instrumentation reads model output, it never re-draws or re-scores.
  OBS_OBSERVE("eval/positive_rank",
              (std::vector<double>{1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0, 100.0}),
              metrics::PositiveRank(positive_score, negative_scores));
  return outcome;
}

}  // namespace

void Recommender::BeginScenario(const data::ScenarioData&, const TrainContext&) {}

std::unique_ptr<CaseScorer> Recommender::CloneForScoring() { return nullptr; }

bool Recommender::ExportServingEmbeddings(ServingEmbeddings*) { return false; }

ScenarioResult EvaluateScenario(Recommender* model, const TrainContext& ctx,
                                data::Scenario scenario, const EvalOptions& options) {
  MDPA_CHECK(model != nullptr);
  MDPA_CHECK(ctx.splits != nullptr);
  OBS_SPAN("eval/scenario");
  const data::ScenarioData& data = ctx.splits->ForScenario(scenario);

  Stopwatch phase;
  {
    OBS_SPAN("eval/begin_scenario");
    model->BeginScenario(data, ctx);
  }

  ScenarioResult result;
  result.timing.begin_seconds = phase.ElapsedSeconds();
  result.ndcg_curve.assign(static_cast<size_t>(options.max_curve_k), 0.0);

  const size_t n = data.cases.size();
  size_t shards = options.num_threads > 0 ? static_cast<size_t>(options.num_threads)
                                          : ThreadPool::Global().num_threads();
  shards = std::max<size_t>(std::min(shards, n), 1);

  // One scorer per shard; a model that opts out of the thread-safety
  // contract (nullptr) is evaluated serially through its own ScoreCase.
  std::vector<std::unique_ptr<CaseScorer>> scorers;
  if (shards > 1) {
    scorers.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      std::unique_ptr<CaseScorer> scorer = model->CloneForScoring();
      if (scorer == nullptr) {
        scorers.clear();
        break;
      }
      scorers.push_back(std::move(scorer));
    }
    if (scorers.empty()) shards = 1;
  }

  std::vector<CaseOutcome> outcomes(n);
  auto score_range = [&](CaseScorer* scorer, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      outcomes[i] = ComputeOutcome(scorer, data.cases[i], options);
    }
  };

  phase.Reset();
  if (shards <= 1) {
    SharedStateScorer serial(model);
    score_range(&serial, 0, n);
  } else {
    ThreadPool::Global().ParallelFor(shards, [&](size_t s) {
      score_range(scorers[s].get(), n * s / shards, n * (s + 1) / shards);
    });
  }
  result.timing.score_seconds = phase.ElapsedSeconds();

  // Ordered merge: accumulate in case order, exactly as the serial loop did,
  // so the parallel path is bit-identical to it.
  phase.Reset();
  metrics::MetricsAccumulator acc;
  result.per_case.reserve(n);
  for (const CaseOutcome& outcome : outcomes) {
    acc.Add(outcome.at_k);
    result.per_case.push_back(outcome.at_k);
    for (size_t i = 0; i < outcome.curve.size(); ++i) {
      result.ndcg_curve[i] += outcome.curve[i];
    }
  }
  result.num_cases = acc.count();
  result.at_k = acc.Mean();
  if (result.num_cases > 0) {
    for (double& v : result.ndcg_curve) v /= static_cast<double>(result.num_cases);
  }
  result.timing.merge_seconds = phase.ElapsedSeconds();
  result.timing.threads_used = static_cast<int>(shards);
  result.timing.cases_per_second =
      result.timing.score_seconds > 0.0
          ? static_cast<double>(n) / result.timing.score_seconds
          : 0.0;
  return result;
}

}  // namespace eval
}  // namespace metadpa
