#include "eval/recommender.h"

#include "util/status.h"

namespace metadpa {
namespace eval {

void Recommender::BeginScenario(const data::ScenarioData&, const TrainContext&) {}

ScenarioResult EvaluateScenario(Recommender* model, const TrainContext& ctx,
                                data::Scenario scenario, const EvalOptions& options) {
  MDPA_CHECK(model != nullptr);
  MDPA_CHECK(ctx.splits != nullptr);
  const data::ScenarioData& data = ctx.splits->ForScenario(scenario);
  model->BeginScenario(data, ctx);

  ScenarioResult result;
  result.ndcg_curve.assign(static_cast<size_t>(options.max_curve_k), 0.0);
  metrics::MetricsAccumulator acc;

  for (const data::EvalCase& eval_case : data.cases) {
    // Item list: positive first, then the sampled negatives.
    std::vector<int64_t> items;
    items.reserve(1 + eval_case.negatives.size());
    items.push_back(eval_case.test_positive);
    items.insert(items.end(), eval_case.negatives.begin(), eval_case.negatives.end());

    std::vector<double> scores = model->ScoreCase(eval_case, items);
    MDPA_CHECK_EQ(scores.size(), items.size());
    const double positive_score = scores[0];
    std::vector<double> negative_scores(scores.begin() + 1, scores.end());

    const metrics::RankingMetrics m =
        metrics::EvaluateCase(positive_score, negative_scores, options.k);
    acc.Add(m);
    result.per_case.push_back(m);
    const std::vector<double> curve =
        metrics::NdcgCurve(positive_score, negative_scores, options.max_curve_k);
    for (size_t i = 0; i < curve.size(); ++i) result.ndcg_curve[i] += curve[i];
  }

  result.num_cases = acc.count();
  result.at_k = acc.Mean();
  if (result.num_cases > 0) {
    for (double& v : result.ndcg_curve) v /= static_cast<double>(result.num_cases);
  }
  return result;
}

}  // namespace eval
}  // namespace metadpa
