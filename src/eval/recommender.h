// Abstract recommender interface shared by MetaDPA and all baselines, plus
// the leave-one-out evaluation driver of §V-A2.
#ifndef METADPA_EVAL_RECOMMENDER_H_
#define METADPA_EVAL_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/splits.h"
#include "data/synthetic.h"
#include "metrics/ranking.h"

namespace metadpa {
namespace eval {

/// \brief Everything a model may train on: the multi-domain data (sources are
/// only used by cross-domain methods) and the target splits. Models must only
/// fit on splits->train plus, during fine-tuning, a scenario's support pool.
struct TrainContext {
  const data::MultiDomainDataset* dataset = nullptr;
  const data::DatasetSplits* splits = nullptr;
  uint64_t seed = 1;
};

/// \brief Base class for every method in the comparison.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// \brief Method name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// \brief Trains on the warm training data (and for cross-domain methods,
  /// the source domains).
  virtual void Fit(const TrainContext& ctx) = 0;

  /// \brief Called once before evaluating a scenario. Default: restore the
  /// post-Fit state and fine-tune on the scenario's support pool if the model
  /// supports it. Must leave the model re-usable for other scenarios (i.e.
  /// implementations snapshot/restore their post-Fit parameters).
  virtual void BeginScenario(const data::ScenarioData& scenario,
                             const TrainContext& ctx);

  /// \brief Scores (higher = more preferred) the items for the case's user.
  /// Meta-learning methods adapt on case.support_items first.
  virtual std::vector<double> ScoreCase(const data::EvalCase& eval_case,
                                        const std::vector<int64_t>& items) = 0;
};

/// \brief Metrics for one (method, scenario) cell of Table III.
struct ScenarioResult {
  metrics::RankingMetrics at_k;          ///< HR/MRR/NDCG at k, plus AUC
  std::vector<double> ndcg_curve;        ///< NDCG@1..max_k (Figs. 3-4)
  std::vector<metrics::RankingMetrics> per_case;  ///< for significance tests
  int64_t num_cases = 0;
};

/// \brief Evaluation options.
struct EvalOptions {
  int k = 10;
  int max_curve_k = 10;
};

/// \brief Runs the leave-one-out protocol for one scenario.
ScenarioResult EvaluateScenario(Recommender* model, const TrainContext& ctx,
                                data::Scenario scenario, const EvalOptions& options);

}  // namespace eval
}  // namespace metadpa

#endif  // METADPA_EVAL_RECOMMENDER_H_
