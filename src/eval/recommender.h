// Abstract recommender interface shared by MetaDPA and all baselines, plus
// the leave-one-out evaluation driver of §V-A2.
#ifndef METADPA_EVAL_RECOMMENDER_H_
#define METADPA_EVAL_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/splits.h"
#include "data/synthetic.h"
#include "metrics/ranking.h"
#include "util/rng.h"
#include "util/status.h"

namespace metadpa {
namespace eval {

/// \brief Everything a model may train on: the multi-domain data (sources are
/// only used by cross-domain methods) and the target splits. Models must only
/// fit on splits->train plus, during fine-tuning, a scenario's support pool.
struct TrainContext {
  const data::MultiDomainDataset* dataset = nullptr;
  const data::DatasetSplits* splits = nullptr;
  uint64_t seed = 1;
};

/// \brief Dense two-tower serving export: a model whose preference score for
/// (user, item) is exactly the dot product users[user] · items[item] can hand
/// the serving layer its factorized tables. `users` is (num_users, dim),
/// `items` is (num_items, dim); row index == entity id.
struct ServingEmbeddings {
  Tensor users;
  Tensor items;
};

/// \brief Per-thread scoring handle for parallel evaluation (see
/// Recommender::CloneForScoring for the thread-safety contract).
class CaseScorer {
 public:
  virtual ~CaseScorer() = default;

  /// \brief Scores (higher = more preferred) the items for the case's user.
  /// Must be bit-identical to the parent Recommender's ScoreCase for the same
  /// case — the parallel evaluation driver relies on this for determinism.
  virtual std::vector<double> Score(const data::EvalCase& eval_case,
                                    const std::vector<int64_t>& items) = 0;
};

/// \brief Base class for every method in the comparison.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// \brief Method name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// \brief Trains on the warm training data (and for cross-domain methods,
  /// the source domains). Returns non-OK only for failures a caller should
  /// handle — today, a kAbort training-health watchdog trip (see
  /// obs/health.h); the model is then left at its last healthy parameters
  /// and must not be checkpointed or evaluated. Invariant violations still
  /// MDPA_CHECK.
  virtual Status Fit(const TrainContext& ctx) = 0;

  /// \brief Called once before evaluating a scenario. Default: restore the
  /// post-Fit state and fine-tune on the scenario's support pool if the model
  /// supports it. Must leave the model re-usable for other scenarios (i.e.
  /// implementations snapshot/restore their post-Fit parameters).
  virtual void BeginScenario(const data::ScenarioData& scenario,
                             const TrainContext& ctx);

  /// \brief Scores (higher = more preferred) the items for the case's user.
  /// Meta-learning methods adapt on case.support_items first. Per-case
  /// stochastic state (e.g. adaptation negative sampling) must be derived
  /// from the case identity via CaseSeed, never from a sequentially consumed
  /// member stream, so that results do not depend on case order.
  virtual std::vector<double> ScoreCase(const data::EvalCase& eval_case,
                                        const std::vector<int64_t>& items) = 0;

  /// \brief Thread-safety contract for parallel evaluation.
  ///
  /// Returns a lightweight scoring handle that EvaluateScenario may use
  /// concurrently with other handles cloned from the same model. A handle
  /// borrows the model's trained state read-only and owns ALL per-case
  /// mutable scoring state (adaptation tasks, fast weights, rngs, scratch
  /// buffers), so handles never race on shared fast weights. The parent must
  /// outlive its handles and must not be mutated (Fit/BeginScenario) while
  /// any handle is alive.
  ///
  /// The default returns nullptr: a model that has not audited its scoring
  /// path opts out, and EvaluateScenario falls back to the serial loop.
  virtual std::unique_ptr<CaseScorer> CloneForScoring();

  /// \brief Optional reduced-precision serving contract. A model whose
  /// scoring is EXACTLY a user·item embedding dot product fills `out` with
  /// its tables and returns true; serve::ModelSnapshot can then quantize
  /// those tables (bf16 storage, per-row symmetric int8) and score top-k
  /// through the reduced-precision kernels instead of the model. The default
  /// returns false: deep scorers (MetaDPA, the MLP baselines) have no exact
  /// factorization and are served at full precision.
  virtual bool ExportServingEmbeddings(ServingEmbeddings* out);
};

/// \brief CaseScorer for models whose ScoreCase is already safe for
/// concurrent callers: a pure forward pass over weights frozen since
/// BeginScenario, with no member rng or scratch state. Such models implement
/// CloneForScoring as `return std::make_unique<SharedStateScorer>(this);`.
class SharedStateScorer : public CaseScorer {
 public:
  explicit SharedStateScorer(Recommender* model) : model_(model) {}
  std::vector<double> Score(const data::EvalCase& eval_case,
                            const std::vector<int64_t>& items) override {
    return model_->ScoreCase(eval_case, items);
  }

 private:
  Recommender* model_;
};

/// \brief Stable per-case adaptation seed: mixes a model-level seed with the
/// case identity, so a case draws the same stream no matter which thread
/// scores it or in which order (serial == parallel, bit for bit).
inline uint64_t CaseSeed(uint64_t model_seed, const data::EvalCase& eval_case) {
  return MixSeeds(model_seed, static_cast<uint64_t>(eval_case.user),
                  static_cast<uint64_t>(eval_case.test_positive));
}

/// \brief Per-phase instrumentation of one EvaluateScenario call.
struct EvalTiming {
  double begin_seconds = 0.0;   ///< BeginScenario (restore + fine-tune)
  double score_seconds = 0.0;   ///< scoring every case (wall clock)
  double merge_seconds = 0.0;   ///< deterministic metric merge
  int threads_used = 1;         ///< scoring shards actually used
  double cases_per_second = 0.0;  ///< num_cases / score_seconds
};

/// \brief Metrics for one (method, scenario) cell of Table III.
struct ScenarioResult {
  metrics::RankingMetrics at_k;          ///< HR/MRR/NDCG at k, plus AUC
  std::vector<double> ndcg_curve;        ///< NDCG@1..max_k (Figs. 3-4)
  std::vector<metrics::RankingMetrics> per_case;  ///< for significance tests
  int64_t num_cases = 0;
  EvalTiming timing;                     ///< not part of the paper's metrics
};

/// \brief Evaluation options.
struct EvalOptions {
  int k = 10;
  int max_curve_k = 10;
  /// Scoring shards: 0 = one per global thread-pool worker, 1 = serial.
  /// Parallel scoring needs the model to support CloneForScoring; models
  /// that return nullptr are evaluated serially regardless.
  int num_threads = 0;
};

/// \brief Runs the leave-one-out protocol for one scenario. Cases are scored
/// in parallel shards when the model supports CloneForScoring; per-shard
/// results are merged in case order, so metrics are bit-identical to a
/// serial (num_threads = 1) run.
ScenarioResult EvaluateScenario(Recommender* model, const TrainContext& ctx,
                                data::Scenario scenario, const EvalOptions& options);

}  // namespace eval
}  // namespace metadpa

#endif  // METADPA_EVAL_RECOMMENDER_H_
