#include "eval/suite.h"

#include <algorithm>
#include <cmath>

#include "baselines/catn.h"
#include "baselines/conn.h"
#include "baselines/daml.h"
#include "baselines/melu.h"
#include "baselines/metacf.h"
#include "baselines/neumf.h"
#include "baselines/tdar.h"

namespace metadpa {
namespace suite {

int ScaledEpochs(int epochs, double effort) {
  return std::max(1, static_cast<int>(std::llround(epochs * effort)));
}

core::MetaDpaConfig DefaultMetaDpaConfig(const SuiteOptions& options) {
  core::MetaDpaConfig config;
  config.seed = options.seed;
  config.adaptation.epochs = ScaledEpochs(30, options.effort);
  config.adaptation.hidden_dim = 48;
  config.adaptation.latent_dim = 12;
  config.adaptation.beta1 = 0.1f;  // paper's grid-search optimum
  config.adaptation.beta2 = 1.0f;
  config.maml.epochs = ScaledEpochs(10, options.effort);
  config.maml.inner_lr = 0.1f;
  config.maml.inner_steps = 1;
  config.maml.second_order = true;
  config.maml.outer_lr = 5e-3f;
  config.maml.meta_batch_size = 8;
  config.maml.finetune_steps = 10;
  config.maml.threads = options.train_threads;
  // accum_batches stays at its default (1): raising it alters the CVAE
  // optimization trajectory (batches per step), so it is not tied to the
  // pure-parallelism train_threads knob.
  config.adaptation.threads = options.train_threads;
  config.model.embed_dim = 24;
  config.model.hidden = {48, 24};
  config.tasks.negatives_per_positive = 1;
  return config;
}

namespace {

meta::MamlConfig BaselineMamlConfig(const SuiteOptions& options) {
  meta::MamlConfig config;
  config.epochs = ScaledEpochs(10, options.effort);
  config.inner_lr = 0.1f;
  config.inner_steps = 1;
  config.second_order = true;
  config.outer_lr = 5e-3f;
  config.meta_batch_size = 8;
  config.finetune_steps = 10;
  config.threads = options.train_threads;
  config.seed = options.seed + 1;
  return config;
}

baselines::JointTrainOptions BaselineTrainOptions(const SuiteOptions& options) {
  baselines::JointTrainOptions train;
  train.epochs = ScaledEpochs(12, options.effort);
  train.batch_size = 64;
  train.learning_rate = 5e-3f;
  train.negatives_per_positive = 2;
  train.finetune_epochs = ScaledEpochs(4, options.effort);
  train.finetune_lr = 5e-3f;
  train.seed = options.seed + 2;
  return train;
}

}  // namespace

std::vector<MethodSpec> AllMethods(const SuiteOptions& options) {
  std::vector<MethodSpec> methods;

  methods.push_back({"NeuMF", [options] {
                       baselines::NeuMfConfig config;
                       config.train = BaselineTrainOptions(options);
                       return std::make_unique<baselines::NeuMf>(config);
                     }});
  methods.push_back({"MeLU", [options] {
                       baselines::MeluConfig config;
                       config.model.embed_dim = 24;
                       config.model.hidden = {48, 24};
                       config.maml = BaselineMamlConfig(options);
                       config.seed = options.seed + 3;
                       return std::make_unique<baselines::Melu>(config);
                     }});
  methods.push_back({"CoNN", [options] {
                       baselines::ConnConfig config;
                       config.train = BaselineTrainOptions(options);
                       return std::make_unique<baselines::Conn>(config);
                     }});
  methods.push_back({"TDAR", [options] {
                       baselines::TdarConfig config;
                       config.train = BaselineTrainOptions(options);
                       return std::make_unique<baselines::Tdar>(config);
                     }});
  methods.push_back({"CATN", [options] {
                       baselines::CatnConfig config;
                       config.train = BaselineTrainOptions(options);
                       return std::make_unique<baselines::Catn>(config);
                     }});
  methods.push_back({"DAML", [options] {
                       baselines::DamlConfig config;
                       config.train = BaselineTrainOptions(options);
                       return std::make_unique<baselines::Daml>(config);
                     }});
  methods.push_back({"MetaCF", [options] {
                       baselines::MetaCfConfig config;
                       config.model.embed_dim = 24;
                       config.model.hidden = {48, 24};
                       config.maml = BaselineMamlConfig(options);
                       config.seed = options.seed + 4;
                       return std::make_unique<baselines::MetaCf>(config);
                     }});
  methods.push_back({"MetaDPA", [options] {
                       return std::make_unique<core::MetaDpa>(
                           DefaultMetaDpaConfig(options));
                     }});
  return methods;
}

std::unique_ptr<eval::Recommender> MakeMethod(const std::string& name,
                                              const SuiteOptions& options) {
  // Ablation variants of §V-E (not part of Table III's eight rows).
  if (name == "MetaDPA-ME") {
    return std::make_unique<core::MetaDpa>(DefaultMetaDpaConfig(options),
                                           core::MetaDpaVariant::kMeOnly);
  }
  if (name == "MetaDPA-MDI") {
    return std::make_unique<core::MetaDpa>(DefaultMetaDpaConfig(options),
                                           core::MetaDpaVariant::kMdiOnly);
  }
  if (name == "MetaDPA-NoAug") {
    core::MetaDpaConfig config = DefaultMetaDpaConfig(options);
    config.use_augmentation = false;
    return std::make_unique<core::MetaDpa>(config);
  }
  for (MethodSpec& spec : AllMethods(options)) {
    if (spec.name == name) return spec.make();
  }
  return nullptr;
}

}  // namespace suite
}  // namespace metadpa
