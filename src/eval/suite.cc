#include "eval/suite.h"

#include <algorithm>
#include <cmath>
#include <iostream>

#include "baselines/catn.h"
#include "baselines/conn.h"
#include "baselines/daml.h"
#include "baselines/melu.h"
#include "baselines/metacf.h"
#include "baselines/neumf.h"
#include "baselines/tdar.h"
#include "obs/obs.h"
#include "tensor/buffer_pool.h"
#include "util/thread_pool.h"

namespace metadpa {
namespace suite {

void SetupObservability(const SuiteOptions& options) {
  if (options.trace_out.empty() && options.metrics_out.empty() &&
      options.telemetry_out.empty()) {
    return;
  }
  obs::SetEnabled(true);
  ThreadPool::Global().SetIdleTimingEnabled(true);
  // Pull bridges: subsystems below obs in the layering (ThreadPool in util,
  // the buffer pool in tensor) keep their native counters; snapshots read
  // them through these providers instead of pushing on their hot paths.
  obs::RegisterStatsProvider("thread_pool", [] {
    const ThreadPool::Stats stats = ThreadPool::Global().GetStats();
    return std::vector<std::pair<std::string, double>>{
        {"thread_pool/tasks_submitted", static_cast<double>(stats.tasks_submitted)},
        {"thread_pool/tasks_executed", static_cast<double>(stats.tasks_executed)},
        {"thread_pool/queue_depth", static_cast<double>(stats.queue_depth)},
        {"thread_pool/peak_queue_depth",
         static_cast<double>(stats.peak_queue_depth)},
        {"thread_pool/idle_seconds", stats.idle_seconds},
    };
  });
  obs::RegisterStatsProvider("tensor_pool", [] {
    const pool::Stats stats = pool::GlobalStats();
    return std::vector<std::pair<std::string, double>>{
        {"tensor_pool/hits", static_cast<double>(stats.hits)},
        {"tensor_pool/misses", static_cast<double>(stats.misses)},
        {"tensor_pool/returned", static_cast<double>(stats.returned)},
        {"tensor_pool/dropped", static_cast<double>(stats.dropped)},
        {"tensor_pool/bytes_reused", static_cast<double>(stats.bytes_reused)},
    };
  });
}

Status ExportObservability(const SuiteOptions& options) {
  if (!options.trace_out.empty()) {
    MDPA_RETURN_NOT_OK(obs::WriteTrace(options.trace_out));
  }
  if (!options.metrics_out.empty()) {
    MDPA_RETURN_NOT_OK(obs::WriteMetrics(options.metrics_out));
  }
  return Status::OK();
}

obs::RunManifest BuildRunManifest(const SuiteOptions& options) {
  obs::RunManifest manifest;
  obs::AddBuildInfo(&manifest);
  obs::AddHostInfo(&manifest);

  manifest.SetDouble("suite", "effort", options.effort);
  manifest.SetInt("suite", "seed", static_cast<int64_t>(options.seed));
  manifest.SetInt("suite", "train_threads", options.train_threads);
  manifest.SetInt("suite", "grad_threads", options.grad_threads);
  manifest.SetInt("suite", "tape_opt", options.tape_opt ? 1 : 0);
  manifest.Set("suite", "watchdog", obs::HealthPolicyName(options.watchdog));
  manifest.SetInt("suite", "telemetry_interval_ms", options.telemetry_interval_ms);

  const core::MetaDpaConfig config = DefaultMetaDpaConfig(options);
  manifest.SetInt("adaptation", "epochs", config.adaptation.epochs);
  manifest.SetInt("adaptation", "hidden_dim", config.adaptation.hidden_dim);
  manifest.SetInt("adaptation", "latent_dim", config.adaptation.latent_dim);
  manifest.SetDouble("adaptation", "beta1", config.adaptation.beta1);
  manifest.SetDouble("adaptation", "beta2", config.adaptation.beta2);
  manifest.SetInt("adaptation", "batch_size", config.adaptation.batch_size);
  manifest.SetDouble("adaptation", "learning_rate", config.adaptation.learning_rate);
  manifest.SetInt("adaptation", "accum_batches", config.adaptation.accum_batches);
  manifest.SetInt("adaptation", "seed", static_cast<int64_t>(config.adaptation.seed));
  manifest.SetInt("maml", "epochs", config.maml.epochs);
  manifest.SetDouble("maml", "inner_lr", config.maml.inner_lr);
  manifest.SetInt("maml", "inner_steps", config.maml.inner_steps);
  manifest.SetBool("maml", "second_order", config.maml.second_order);
  manifest.SetDouble("maml", "outer_lr", config.maml.outer_lr);
  manifest.SetInt("maml", "meta_batch_size", config.maml.meta_batch_size);
  manifest.SetInt("maml", "finetune_steps", config.maml.finetune_steps);
  manifest.SetInt("maml", "seed", static_cast<int64_t>(config.maml.seed));
  return manifest;
}

std::unique_ptr<obs::TelemetrySampler> StartTelemetry(
    const SuiteOptions& options, const obs::RunManifest* manifest) {
  if (options.telemetry_out.empty()) return nullptr;
  const obs::RunManifest resolved =
      manifest != nullptr ? *manifest : BuildRunManifest(options);
  const Status manifest_status =
      resolved.WriteJson(options.telemetry_out + ".manifest.json");
  if (!manifest_status.ok()) {
    std::cerr << "warning: run manifest not written: " << manifest_status.ToString()
              << "\n";
  }
  obs::TelemetryOptions telemetry;
  telemetry.path = options.telemetry_out;
  telemetry.interval_ms = options.telemetry_interval_ms;
  return std::make_unique<obs::TelemetrySampler>(telemetry);
}

int ScaledEpochs(int epochs, double effort) {
  return std::max(1, static_cast<int>(std::llround(epochs * effort)));
}

core::MetaDpaConfig DefaultMetaDpaConfig(const SuiteOptions& options) {
  core::MetaDpaConfig config;
  config.seed = options.seed;
  config.adaptation.epochs = ScaledEpochs(30, options.effort);
  config.adaptation.hidden_dim = 48;
  config.adaptation.latent_dim = 12;
  config.adaptation.beta1 = 0.1f;  // paper's grid-search optimum
  config.adaptation.beta2 = 1.0f;
  config.maml.epochs = ScaledEpochs(10, options.effort);
  config.maml.inner_lr = 0.1f;
  config.maml.inner_steps = 1;
  config.maml.second_order = true;
  config.maml.outer_lr = 5e-3f;
  config.maml.meta_batch_size = 8;
  config.maml.finetune_steps = 10;
  config.maml.threads = options.train_threads;
  config.maml.grad_threads = options.grad_threads;
  config.maml.tape_opt = options.tape_opt;
  // accum_batches stays at its default (1): raising it alters the CVAE
  // optimization trajectory (batches per step), so it is not tied to the
  // pure-parallelism train_threads knob.
  config.adaptation.threads = options.train_threads;
  config.adaptation.grad_threads = options.grad_threads;
  config.adaptation.tape_opt = options.tape_opt;
  config.maml.health.policy = options.watchdog;
  config.adaptation.health.policy = options.watchdog;
  config.model.embed_dim = 24;
  config.model.hidden = {48, 24};
  config.tasks.negatives_per_positive = 1;
  return config;
}

namespace {

meta::MamlConfig BaselineMamlConfig(const SuiteOptions& options) {
  meta::MamlConfig config;
  config.epochs = ScaledEpochs(10, options.effort);
  config.inner_lr = 0.1f;
  config.inner_steps = 1;
  config.second_order = true;
  config.outer_lr = 5e-3f;
  config.meta_batch_size = 8;
  config.finetune_steps = 10;
  config.threads = options.train_threads;
  config.grad_threads = options.grad_threads;
  config.tape_opt = options.tape_opt;
  config.seed = options.seed + 1;
  config.health.policy = options.watchdog;
  return config;
}

baselines::JointTrainOptions BaselineTrainOptions(const SuiteOptions& options) {
  baselines::JointTrainOptions train;
  train.epochs = ScaledEpochs(12, options.effort);
  train.batch_size = 64;
  train.learning_rate = 5e-3f;
  train.negatives_per_positive = 2;
  train.finetune_epochs = ScaledEpochs(4, options.effort);
  train.finetune_lr = 5e-3f;
  train.seed = options.seed + 2;
  return train;
}

}  // namespace

std::vector<MethodSpec> AllMethods(const SuiteOptions& options) {
  std::vector<MethodSpec> methods;

  methods.push_back({"NeuMF", [options] {
                       baselines::NeuMfConfig config;
                       config.train = BaselineTrainOptions(options);
                       return std::make_unique<baselines::NeuMf>(config);
                     }});
  methods.push_back({"MeLU", [options] {
                       baselines::MeluConfig config;
                       config.model.embed_dim = 24;
                       config.model.hidden = {48, 24};
                       config.maml = BaselineMamlConfig(options);
                       config.seed = options.seed + 3;
                       return std::make_unique<baselines::Melu>(config);
                     }});
  methods.push_back({"CoNN", [options] {
                       baselines::ConnConfig config;
                       config.train = BaselineTrainOptions(options);
                       return std::make_unique<baselines::Conn>(config);
                     }});
  methods.push_back({"TDAR", [options] {
                       baselines::TdarConfig config;
                       config.train = BaselineTrainOptions(options);
                       return std::make_unique<baselines::Tdar>(config);
                     }});
  methods.push_back({"CATN", [options] {
                       baselines::CatnConfig config;
                       config.train = BaselineTrainOptions(options);
                       return std::make_unique<baselines::Catn>(config);
                     }});
  methods.push_back({"DAML", [options] {
                       baselines::DamlConfig config;
                       config.train = BaselineTrainOptions(options);
                       return std::make_unique<baselines::Daml>(config);
                     }});
  methods.push_back({"MetaCF", [options] {
                       baselines::MetaCfConfig config;
                       config.model.embed_dim = 24;
                       config.model.hidden = {48, 24};
                       config.maml = BaselineMamlConfig(options);
                       config.seed = options.seed + 4;
                       return std::make_unique<baselines::MetaCf>(config);
                     }});
  methods.push_back({"MetaDPA", [options] {
                       return std::make_unique<core::MetaDpa>(
                           DefaultMetaDpaConfig(options));
                     }});
  return methods;
}

std::unique_ptr<eval::Recommender> MakeMethod(const std::string& name,
                                              const SuiteOptions& options) {
  // Ablation variants of §V-E (not part of Table III's eight rows).
  if (name == "MetaDPA-ME") {
    return std::make_unique<core::MetaDpa>(DefaultMetaDpaConfig(options),
                                           core::MetaDpaVariant::kMeOnly);
  }
  if (name == "MetaDPA-MDI") {
    return std::make_unique<core::MetaDpa>(DefaultMetaDpaConfig(options),
                                           core::MetaDpaVariant::kMdiOnly);
  }
  if (name == "MetaDPA-NoAug") {
    core::MetaDpaConfig config = DefaultMetaDpaConfig(options);
    config.use_augmentation = false;
    return std::make_unique<core::MetaDpa>(config);
  }
  for (MethodSpec& spec : AllMethods(options)) {
    if (spec.name == name) return spec.make();
  }
  return nullptr;
}

}  // namespace suite
}  // namespace metadpa
