#include "eval/parity.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "obs/obs.h"
#include "tensor/bf16.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace metadpa {
namespace eval {
namespace {

// ---------------------------------------------------------------------------
// Reduced-precision score derivations. The table paths mirror serve/quant.h
// element for element (same rounding, same accumulation order); eval cannot
// link serve, so precision_parity_test pins the two with bit-equality checks.
// ---------------------------------------------------------------------------

/// Per-row symmetric int8 tables for an exporting model.
struct Int8Tables {
  int64_t cols = 0;
  std::vector<int8_t> user_data, item_data;
  std::vector<float> user_scales, item_scales;
};

void QuantizeRows(const Tensor& m, std::vector<int8_t>* data,
                  std::vector<float>* scales) {
  const int64_t rows = m.dim(0), cols = m.dim(1);
  data->resize(static_cast<size_t>(rows * cols));
  scales->resize(static_cast<size_t>(rows));
  const float* src = m.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = src + r * cols;
    float max_abs = 0.0f;
    for (int64_t j = 0; j < cols; ++j) max_abs = std::max(max_abs, std::fabs(row[j]));
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 0.0f;
    const float inv_scale = scale > 0.0f ? 1.0f / scale : 0.0f;
    (*scales)[static_cast<size_t>(r)] = scale;
    int8_t* dst = data->data() + r * cols;
    for (int64_t j = 0; j < cols; ++j) {
      const int32_t code = static_cast<int32_t>(std::lrintf(row[j] * inv_scale));
      dst[j] = static_cast<int8_t>(std::min(127, std::max(-127, code)));
    }
  }
}

Int8Tables BuildInt8Tables(const ServingEmbeddings& e) {
  Int8Tables t;
  t.cols = e.users.dim(1);
  QuantizeRows(e.users, &t.user_data, &t.user_scales);
  QuantizeRows(e.items, &t.item_data, &t.item_scales);
  return t;
}

/// bf16-packed tables for an exporting model.
struct Bf16Tables {
  int64_t cols = 0;
  std::vector<uint16_t> user_data, item_data;
};

Bf16Tables BuildBf16Tables(const ServingEmbeddings& e) {
  Bf16Tables t;
  t.cols = e.users.dim(1);
  t.user_data.resize(static_cast<size_t>(e.users.numel()));
  t.item_data.resize(static_cast<size_t>(e.items.numel()));
  t::Bf16FromFloatArray(e.users.data(), t.user_data.data(), e.users.numel());
  t::Bf16FromFloatArray(e.items.data(), t.item_data.data(), e.items.numel());
  return t;
}

std::vector<double> ScoreInt8Tables(const Int8Tables& t, int64_t user,
                                    const std::vector<int64_t>& items) {
  const int8_t* u = t.user_data.data() + user * t.cols;
  const float user_scale = t.user_scales[static_cast<size_t>(user)];
  std::vector<double> scores;
  scores.reserve(items.size());
  for (int64_t item : items) {
    const int8_t* v = t.item_data.data() + item * t.cols;
    int32_t acc = 0;
    for (int64_t j = 0; j < t.cols; ++j) {
      acc += static_cast<int32_t>(u[j]) * static_cast<int32_t>(v[j]);
    }
    const float rescale = user_scale * t.item_scales[static_cast<size_t>(item)];
    scores.push_back(static_cast<double>(static_cast<float>(acc) * rescale));
  }
  return scores;
}

std::vector<double> ScoreBf16Tables(const Bf16Tables& t, int64_t user,
                                    const std::vector<int64_t>& items) {
  const uint16_t* u = t.user_data.data() + user * t.cols;
  std::vector<double> scores;
  scores.reserve(items.size());
  for (int64_t item : items) {
    const uint16_t* v = t.item_data.data() + item * t.cols;
    float acc = 0.0f;
    for (int64_t j = 0; j < t.cols; ++j) {
      acc += t::FloatFromBf16(u[j]) * t::FloatFromBf16(v[j]);
    }
    scores.push_back(static_cast<double>(acc));
  }
  return scores;
}

/// Score-interface transform for non-exporting models: every score rounded
/// through bf16 — exactly what storing the score path's output reduced costs.
std::vector<double> Bf16RoundScores(const std::vector<double>& scores) {
  std::vector<double> out;
  out.reserve(scores.size());
  for (double s : scores) {
    out.push_back(static_cast<double>(
        t::FloatFromBf16(t::Bf16FromFloat(static_cast<float>(s)))));
  }
  return out;
}

/// Score-interface transform: per-case symmetric int8 quantize/dequantize of
/// the score vector (scale = max|s|/127), the same scheme the row quantizer
/// applies to embeddings.
std::vector<double> Int8RoundScores(const std::vector<double>& scores) {
  double max_abs = 0.0;
  for (double s : scores) {
    if (std::isfinite(s)) max_abs = std::max(max_abs, std::fabs(s));
  }
  const double scale = max_abs > 0.0 ? max_abs / 127.0 : 0.0;
  const double inv_scale = scale > 0.0 ? 1.0 / scale : 0.0;
  std::vector<double> out;
  out.reserve(scores.size());
  for (double s : scores) {
    if (!std::isfinite(s)) {
      out.push_back(s);  // non-finite passes through: metrics pin it to worst
      continue;
    }
    const long code = std::lrint(s * inv_scale);
    const long clamped = std::min<long>(127, std::max<long>(-127, code));
    out.push_back(static_cast<double>(clamped) * scale);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-case bookkeeping.
// ---------------------------------------------------------------------------

/// Top-k index set under RecommendTopK's exact comparator (score desc, item
/// id asc). Indices refer to the case's item list; item ids order-match it.
std::vector<size_t> TopKIndices(const std::vector<double>& scores,
                                const std::vector<int64_t>& items, int k) {
  std::vector<size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0u);
  const size_t top = std::min<size_t>(static_cast<size_t>(std::max(k, 0)), idx.size());
  std::partial_sort(idx.begin(), idx.begin() + top, idx.end(),
                    [&](size_t a, size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return items[a] < items[b];
                    });
  idx.resize(top);
  std::sort(idx.begin(), idx.end());
  return idx;
}

double OverlapFraction(const std::vector<size_t>& a, const std::vector<size_t>& b) {
  if (a.empty()) return 1.0;
  std::vector<size_t> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) / static_cast<double>(a.size());
}

struct PrecisionAccumulator {
  metrics::MetricsAccumulator acc;
  double overlap_sum = 0.0;
  double overlap_min = 1.0;

  void Add(const std::vector<double>& scores, const std::vector<size_t>& fp32_topk,
           const std::vector<int64_t>& items, int k) {
    std::vector<double> negatives(scores.begin() + 1, scores.end());
    acc.Add(metrics::EvaluateCase(scores[0], negatives, k));
    const double overlap = OverlapFraction(fp32_topk, TopKIndices(scores, items, k));
    overlap_sum += overlap;
    overlap_min = std::min(overlap_min, overlap);
  }
};

double MaxMetricDelta(const metrics::RankingMetrics& a,
                      const metrics::RankingMetrics& b) {
  double d = std::fabs(a.hr - b.hr);
  d = std::max(d, std::fabs(a.mrr - b.mrr));
  d = std::max(d, std::fabs(a.ndcg - b.ndcg));
  d = std::max(d, std::fabs(a.auc - b.auc));
  return d;
}

PrecisionRow FinishRow(ScoringPrecision precision, const PrecisionAccumulator& pa,
                       const metrics::RankingMetrics& fp32_mean, int64_t cases,
                       bool via_tables, const ParityTolerance& tol) {
  PrecisionRow row;
  row.precision = precision;
  row.at_k = pa.acc.Mean();
  row.via_tables = via_tables;
  row.max_metric_delta = MaxMetricDelta(row.at_k, fp32_mean);
  row.mean_topk_overlap =
      cases > 0 ? pa.overlap_sum / static_cast<double>(cases) : 1.0;
  row.min_topk_overlap = pa.overlap_min;
  char buf[160];
  if (row.max_metric_delta > tol.max_metric_delta) {
    std::snprintf(buf, sizeof(buf), "metric delta %.6f exceeds tolerance %.6f",
                  row.max_metric_delta, tol.max_metric_delta);
    row.passed = false;
    row.failure = buf;
  } else if (row.mean_topk_overlap < tol.min_mean_topk_overlap) {
    std::snprintf(buf, sizeof(buf), "mean top-k overlap %.4f below bound %.4f",
                  row.mean_topk_overlap, tol.min_mean_topk_overlap);
    row.passed = false;
    row.failure = buf;
  } else if (row.min_topk_overlap < tol.min_case_topk_overlap) {
    std::snprintf(buf, sizeof(buf), "worst-case top-k overlap %.4f below bound %.4f",
                  row.min_topk_overlap, tol.min_case_topk_overlap);
    row.passed = false;
    row.failure = buf;
  }
  return row;
}

}  // namespace

const char* ScoringPrecisionName(ScoringPrecision precision) {
  switch (precision) {
    case ScoringPrecision::kFp32: return "fp32";
    case ScoringPrecision::kBf16: return "bf16";
    case ScoringPrecision::kInt8: return "int8";
  }
  return "unknown";
}

const PrecisionRow* ParityReport::Row(ScoringPrecision precision) const {
  for (const PrecisionRow& row : rows) {
    if (row.precision == precision) return &row;
  }
  return nullptr;
}

ParityReport RunParity(Recommender* model, const TrainContext& ctx,
                       data::Scenario scenario, const ParityOptions& options) {
  MDPA_CHECK(model != nullptr);
  MDPA_CHECK(ctx.splits != nullptr);
  MDPA_CHECK_GE(options.k, 1);
  OBS_SPAN("eval/parity");
  const data::ScenarioData& data = ctx.splits->ForScenario(scenario);
  model->BeginScenario(data, ctx);

  ParityReport report;
  report.model_name = model->name();
  report.scenario = scenario;
  report.num_cases = static_cast<int64_t>(data.cases.size());

  // Factorized tables when the model exports them (the real serving scheme);
  // score-interface transforms otherwise.
  ServingEmbeddings embeddings;
  const bool via_tables = model->ExportServingEmbeddings(&embeddings);
  Int8Tables int8_tables;
  Bf16Tables bf16_tables;
  if (via_tables) {
    int8_tables = BuildInt8Tables(embeddings);
    bf16_tables = BuildBf16Tables(embeddings);
  }

  // fp32 scoring, sharded exactly as EvaluateScenario shards it: one scorer
  // per shard when the model supports cloning, serial otherwise. Scores are
  // stored per case and every precision's metrics are accumulated in case
  // order below, so the fp32 row is bit-identical to EvaluateScenario.
  const size_t n = data.cases.size();
  size_t shards = options.num_threads > 0 ? static_cast<size_t>(options.num_threads)
                                          : ThreadPool::Global().num_threads();
  shards = std::max<size_t>(std::min(shards, n), 1);
  std::vector<std::unique_ptr<CaseScorer>> scorers;
  if (shards > 1) {
    scorers.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      std::unique_ptr<CaseScorer> scorer = model->CloneForScoring();
      if (scorer == nullptr) {
        scorers.clear();
        break;
      }
      scorers.push_back(std::move(scorer));
    }
    if (scorers.empty()) shards = 1;
  }

  std::vector<std::vector<int64_t>> case_items(n);
  std::vector<std::vector<double>> fp32_scores(n);
  auto score_range = [&](CaseScorer* scorer, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const data::EvalCase& eval_case = data.cases[i];
      std::vector<int64_t>& items = case_items[i];
      items.reserve(1 + eval_case.negatives.size());
      items.push_back(eval_case.test_positive);
      items.insert(items.end(), eval_case.negatives.begin(),
                   eval_case.negatives.end());
      fp32_scores[i] = scorer->Score(eval_case, items);
      MDPA_CHECK_EQ(fp32_scores[i].size(), items.size());
    }
  };
  if (shards <= 1) {
    SharedStateScorer serial(model);
    score_range(&serial, 0, n);
  } else {
    ThreadPool::Global().ParallelFor(shards, [&](size_t s) {
      score_range(scorers[s].get(), n * s / shards, n * (s + 1) / shards);
    });
  }

  // Derive reduced-precision scores and accumulate all three precisions in
  // case order (deterministic merge, as EvaluateScenario).
  PrecisionAccumulator fp32_acc, bf16_acc, int8_acc;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<int64_t>& items = case_items[i];
    const std::vector<double>& fp32 = fp32_scores[i];
    const std::vector<size_t> fp32_topk = TopKIndices(fp32, items, options.k);
    const int64_t user = data.cases[i].user;
    const std::vector<double> bf16 = via_tables
                                         ? ScoreBf16Tables(bf16_tables, user, items)
                                         : Bf16RoundScores(fp32);
    const std::vector<double> int8 = via_tables
                                         ? ScoreInt8Tables(int8_tables, user, items)
                                         : Int8RoundScores(fp32);
    fp32_acc.Add(fp32, fp32_topk, items, options.k);
    bf16_acc.Add(bf16, fp32_topk, items, options.k);
    int8_acc.Add(int8, fp32_topk, items, options.k);
  }
  OBS_COUNT("eval/parity_cases", static_cast<int64_t>(n));

  const metrics::RankingMetrics fp32_mean = fp32_acc.acc.Mean();
  // fp32 vs itself must be exactly zero delta and full overlap by
  // construction — tolerance zero keeps that an executable invariant.
  report.rows.push_back(FinishRow(ScoringPrecision::kFp32, fp32_acc, fp32_mean,
                                  report.num_cases, false, ParityTolerance()));
  report.rows.push_back(FinishRow(ScoringPrecision::kBf16, bf16_acc, fp32_mean,
                                  report.num_cases, via_tables, options.bf16));
  report.rows.push_back(FinishRow(ScoringPrecision::kInt8, int8_acc, fp32_mean,
                                  report.num_cases, via_tables, options.int8));
  report.passed = true;
  for (const PrecisionRow& row : report.rows) report.passed &= row.passed;
  return report;
}

std::string RenderParityReports(const std::vector<ParityReport>& reports) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-12s %-10s %-5s %-7s %8s %8s %8s %8s %9s %9s %9s  %s\n",
                "model", "scenario", "prec", "path", "HR", "MRR", "NDCG", "AUC",
                "maxDelta", "ovl.mean", "ovl.min", "status");
  out += line;
  for (const ParityReport& report : reports) {
    for (const PrecisionRow& row : report.rows) {
      std::snprintf(line, sizeof(line),
                    "%-12s %-10s %-5s %-7s %8.4f %8.4f %8.4f %8.4f %9.6f %9.4f %9.4f  %s\n",
                    report.model_name.c_str(), data::ScenarioName(report.scenario),
                    ScoringPrecisionName(row.precision),
                    row.via_tables ? "tables" : "scores", row.at_k.hr, row.at_k.mrr,
                    row.at_k.ndcg, row.at_k.auc, row.max_metric_delta,
                    row.mean_topk_overlap, row.min_topk_overlap,
                    row.passed ? "ok" : row.failure.c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace eval
}  // namespace metadpa
