// Precision-parity evaluation harness.
//
// The reduced-precision serving path (bf16 storage, per-row symmetric int8 —
// serve/quant.h) trades bits for memory and throughput; this harness measures
// what that trade costs in the paper's OWN metrics. One call trains nothing:
// it takes an already-fitted model, scores every leave-one-out case of a
// scenario ONCE at fp32, derives the bf16 and int8 scores for the same cases,
// and reports per-precision HR/MRR/NDCG/AUC plus the top-k set overlap
// against the fp32 ranking, asserting each against a declared tolerance.
//
// How reduced-precision scores are derived:
//  * A model with an exact dot-product factorization (ExportServingEmbeddings
//    returns true) is scored through reduced-precision TABLES, mirroring the
//    serving kernels element for element: bf16 rounds every embedding entry
//    (RNE) and dots in fp32; int8 quantizes every row symmetrically
//    (scale = max|row|/127) and dots in int32. The mirror is pinned to
//    serve/quant.h by precision_parity_test, which asserts bit-equal scores
//    between the two implementations (eval cannot link serve — the dependency
//    points the other way).
//  * A deep scorer (MetaDPA, the MLP baselines) has no factorized tables; its
//    serving path stores parameters reduced but scores in fp32. For parity we
//    bound the score-path sensitivity by transforming the fp32 score vector
//    at the scoring interface: bf16 rounds each score; int8 symmetrically
//    quantizes/dequantizes the case's score vector (scale = max|s|/127).
//    That models "scores transported at reduced precision" — the tightest
//    measurable proxy without a factorization.
//
// Determinism: the fp32 row is computed with the same per-case scoring and
// the same case-order metric accumulation as EvaluateScenario, so its metrics
// are bit-identical to EvaluateScenario's for the same model and options —
// the parity report's baseline IS the paper's number, not a re-derivation.
#ifndef METADPA_EVAL_PARITY_H_
#define METADPA_EVAL_PARITY_H_

#include <string>
#include <vector>

#include "eval/recommender.h"

namespace metadpa {
namespace eval {

/// \brief Scoring precision under parity test. Mirrors serve::quant::Precision
/// (eval cannot depend on serve); keep the two enums in sync.
enum class ScoringPrecision { kFp32, kBf16, kInt8 };

/// \brief "fp32" / "bf16" / "int8".
const char* ScoringPrecisionName(ScoringPrecision precision);

/// \brief Per-precision acceptance thresholds.
struct ParityTolerance {
  /// Max |metric(precision) - metric(fp32)| over HR/MRR/NDCG/AUC.
  double max_metric_delta = 0.0;
  /// Min mean top-k overlap |topk(precision) ∩ topk(fp32)| / k across cases.
  double min_mean_topk_overlap = 1.0;
  /// Min per-case top-k overlap (the exact set-overlap bound).
  double min_case_topk_overlap = 1.0;
};

/// \brief Parity run options. Defaults encode the contract this repo ships
/// with: fp32 exact, bf16 within ~1e-2 on every metric with ≥80% per-case
/// top-k agreement, int8 within ~2.5e-2 with ≥60% per-case agreement (per-row
/// symmetric quantization keeps rankings largely intact; see DESIGN.md).
struct ParityOptions {
  int k = 10;                 ///< metric cutoff and top-k overlap set size
  int num_threads = 0;        ///< fp32 scoring shards, as EvalOptions
  ParityTolerance bf16{1e-2, 0.9, 0.8};
  ParityTolerance int8{2.5e-2, 0.8, 0.6};
};

/// \brief One precision's outcome for one (model, scenario).
struct PrecisionRow {
  ScoringPrecision precision = ScoringPrecision::kFp32;
  metrics::RankingMetrics at_k;    ///< mean metrics at this precision
  double max_metric_delta = 0.0;   ///< vs the fp32 row
  double mean_topk_overlap = 1.0;  ///< mean over cases vs fp32 top-k set
  double min_topk_overlap = 1.0;   ///< worst case vs fp32 top-k set
  bool via_tables = false;         ///< true = factorized-table kernels
  bool passed = true;
  std::string failure;             ///< first violated bound, human-readable
};

/// \brief Parity verdict for one (model, scenario).
struct ParityReport {
  std::string model_name;
  data::Scenario scenario = data::Scenario::kWarm;
  int64_t num_cases = 0;
  std::vector<PrecisionRow> rows;  ///< fp32 first, then bf16, then int8
  bool passed = false;             ///< every row passed

  const PrecisionRow* Row(ScoringPrecision precision) const;
};

/// \brief Runs the parity protocol for one already-fitted model on one
/// scenario. Calls BeginScenario (so meta methods fine-tune exactly as in
/// EvaluateScenario), scores every case once at fp32, derives bf16/int8
/// scores, and fills one report. The model is left re-usable.
ParityReport RunParity(Recommender* model, const TrainContext& ctx,
                       data::Scenario scenario, const ParityOptions& options);

/// \brief Renders reports as an aligned text table (one row per precision).
std::string RenderParityReports(const std::vector<ParityReport>& reports);

}  // namespace eval
}  // namespace metadpa

#endif  // METADPA_EVAL_PARITY_H_
