#include "nn/module.h"

namespace metadpa {
namespace nn {

ag::Variable Module::Forward(const ag::Variable& x) const {
  ParamList params = Parameters();
  size_t cursor = 0;
  ag::Variable out = ForwardWith(x, params, &cursor);
  MDPA_CHECK_EQ(cursor, params.size()) << "module consumed a wrong parameter count";
  return out;
}

void Module::SetTraining(bool) {}

int64_t Module::NumParams() const {
  int64_t n = 0;
  for (const auto& p : Parameters()) n += p.numel();
  return n;
}

Sequential& Sequential::Add(std::unique_ptr<Module> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

ParamList Sequential::Parameters() const {
  ParamList out;
  for (const auto& layer : layers_) {
    ParamList p = layer->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

size_t Sequential::NumParamTensors() const {
  size_t n = 0;
  for (const auto& layer : layers_) n += layer->NumParamTensors();
  return n;
}

ag::Variable Sequential::ForwardWith(const ag::Variable& x, const ParamList& params,
                                     size_t* cursor) const {
  ag::Variable cur = x;
  for (const auto& layer : layers_) {
    cur = layer->ForwardWith(cur, params, cursor);
  }
  return cur;
}

void Sequential::SetTraining(bool training) {
  for (const auto& layer : layers_) layer->SetTraining(training);
}

std::vector<Tensor> SnapshotParams(const ParamList& params) {
  std::vector<Tensor> out;
  out.reserve(params.size());
  for (const auto& p : params) out.push_back(p.data().Clone());
  return out;
}

void RestoreParams(const ParamList& params, const std::vector<Tensor>& snapshot) {
  MDPA_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    // Variables are shared handles; a copy still addresses the same leaf node.
    ag::Variable handle = params[i];
    handle.SetData(snapshot[i].Clone());
  }
}

}  // namespace nn
}  // namespace metadpa
