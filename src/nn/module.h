// Neural-network modules over the autograd engine.
//
// Modules own leaf parameter Variables but can also run with externally
// supplied "fast weights" via ForwardWith: MAML's inner loop produces adapted
// parameters as graph nodes, and the query pass must consume them without
// touching the stored leaves. Every module therefore reports how many
// parameter tensors it consumes and reads them from a cursor.
#ifndef METADPA_NN_MODULE_H_
#define METADPA_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "util/rng.h"

namespace metadpa {
namespace nn {

/// \brief Ordered list of parameter variables.
using ParamList = std::vector<ag::Variable>;

/// \brief Base class for all layers and models.
class Module {
 public:
  virtual ~Module() = default;

  /// \brief The module's own parameters, in consumption order.
  virtual ParamList Parameters() const = 0;

  /// \brief Number of parameter tensors consumed by ForwardWith.
  virtual size_t NumParamTensors() const = 0;

  /// \brief Forward pass reading parameters from params[*cursor...]; advances
  /// the cursor by NumParamTensors().
  virtual ag::Variable ForwardWith(const ag::Variable& x, const ParamList& params,
                                   size_t* cursor) const = 0;

  /// \brief Forward pass using the module's own parameters.
  ag::Variable Forward(const ag::Variable& x) const;

  /// \brief Toggles training-time behaviour (dropout etc.). Default no-op.
  virtual void SetTraining(bool training);

  /// \brief Total scalar parameter count.
  int64_t NumParams() const;
};

/// \brief Composition of modules applied in order.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// \brief Appends a layer; returns *this for chaining.
  Sequential& Add(std::unique_ptr<Module> layer);

  ParamList Parameters() const override;
  size_t NumParamTensors() const override;
  ag::Variable ForwardWith(const ag::Variable& x, const ParamList& params,
                           size_t* cursor) const override;
  void SetTraining(bool training) override;

  size_t size() const { return layers_.size(); }
  Module& layer(size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

/// \brief Copies parameter data out of a list (detached snapshot).
std::vector<Tensor> SnapshotParams(const ParamList& params);

/// \brief Writes a snapshot back into leaf parameters.
void RestoreParams(const ParamList& params, const std::vector<Tensor>& snapshot);

}  // namespace nn
}  // namespace metadpa

#endif  // METADPA_NN_MODULE_H_
