#include "nn/checkpoint.h"

#include "tensor/serialize.h"

namespace metadpa {
namespace nn {

Status SaveCheckpoint(const std::string& path, const ParamList& params) {
  std::vector<Tensor> tensors;
  tensors.reserve(params.size());
  for (const auto& p : params) tensors.push_back(p.data());
  return t::SaveTensors(path, tensors);
}

Status SaveCheckpoint(const std::string& path, const ParamList& params,
                      t::DType dtype) {
  std::vector<Tensor> tensors;
  tensors.reserve(params.size());
  for (const auto& p : params) tensors.push_back(p.data());
  return t::SaveTensors(path, tensors, dtype);
}

Status LoadCheckpoint(const std::string& path, const ParamList& params) {
  Result<std::vector<Tensor>> loaded = t::LoadTensors(path);
  if (!loaded.ok()) return loaded.status();
  const std::vector<Tensor>& tensors = loaded.ValueOrDie();
  if (tensors.size() != params.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(tensors.size()) + " tensors, model has " +
        std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!SameShape(tensors[i].shape(), params[i].shape())) {
      return Status::InvalidArgument("checkpoint tensor " + std::to_string(i) +
                                     " shape " + ShapeToString(tensors[i].shape()) +
                                     " does not match model shape " +
                                     ShapeToString(params[i].shape()));
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    ag::Variable handle = params[i];
    handle.SetData(tensors[i].Clone());
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace metadpa
