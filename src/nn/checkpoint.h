// Model checkpointing: parameter lists round-trip through the binary tensor
// file format, with shape validation on load.
#ifndef METADPA_NN_CHECKPOINT_H_
#define METADPA_NN_CHECKPOINT_H_

#include <string>

#include "nn/module.h"
#include "tensor/serialize.h"
#include "util/status.h"

namespace metadpa {
namespace nn {

/// \brief Saves a parameter list's current data to `path`.
Status SaveCheckpoint(const std::string& path, const ParamList& params);

/// \brief Saves a parameter list at a declared storage precision.
/// t::DType::kFloat32 writes dtype-tagged fp32 records (same values as the
/// two-argument form, self-describing header); t::DType::kBFloat16 rounds
/// every parameter to bf16 (RNE) and halves the checkpoint size — embedding
/// tables and model snapshots use this for the reduced-precision storage
/// path. LoadCheckpoint reads either transparently (bf16 widens to fp32).
Status SaveCheckpoint(const std::string& path, const ParamList& params,
                      t::DType dtype);

/// \brief Loads a checkpoint into an existing parameter list; every tensor's
/// shape must match (the model architecture is not serialized).
Status LoadCheckpoint(const std::string& path, const ParamList& params);

}  // namespace nn
}  // namespace metadpa

#endif  // METADPA_NN_CHECKPOINT_H_
