// Model checkpointing: parameter lists round-trip through the binary tensor
// file format, with shape validation on load.
#ifndef METADPA_NN_CHECKPOINT_H_
#define METADPA_NN_CHECKPOINT_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace metadpa {
namespace nn {

/// \brief Saves a parameter list's current data to `path`.
Status SaveCheckpoint(const std::string& path, const ParamList& params);

/// \brief Loads a checkpoint into an existing parameter list; every tensor's
/// shape must match (the model architecture is not serialized).
Status LoadCheckpoint(const std::string& path, const ParamList& params);

}  // namespace nn
}  // namespace metadpa

#endif  // METADPA_NN_CHECKPOINT_H_
