// Concrete layers: Linear, activations, Dropout.
#ifndef METADPA_NN_LAYERS_H_
#define METADPA_NN_LAYERS_H_

#include <memory>

#include "nn/module.h"

namespace metadpa {
namespace nn {

/// \brief Weight initialization schemes.
enum class Init {
  kXavierUniform,  ///< U(-sqrt(6/(fan_in+fan_out)), +...)  — tanh/sigmoid nets
  kHeNormal,       ///< N(0, sqrt(2/fan_in))                — relu nets
  kZeros,
};

/// \brief Fully connected layer: y = x W + b with x of shape (batch, in).
class Linear : public Module {
 public:
  /// \brief Creates and initializes W (in x out) and b (1 x out).
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         Init init = Init::kXavierUniform);

  ParamList Parameters() const override;
  size_t NumParamTensors() const override { return 2; }
  ag::Variable ForwardWith(const ag::Variable& x, const ParamList& params,
                           size_t* cursor) const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  ag::Variable weight_;
  ag::Variable bias_;
};

/// \brief Parameter-free elementwise activation layers.
class ReluLayer : public Module {
 public:
  ParamList Parameters() const override { return {}; }
  size_t NumParamTensors() const override { return 0; }
  ag::Variable ForwardWith(const ag::Variable& x, const ParamList&,
                           size_t*) const override {
    return ag::Relu(x);
  }
};

class SigmoidLayer : public Module {
 public:
  ParamList Parameters() const override { return {}; }
  size_t NumParamTensors() const override { return 0; }
  ag::Variable ForwardWith(const ag::Variable& x, const ParamList&,
                           size_t*) const override {
    return ag::Sigmoid(x);
  }
};

class TanhLayer : public Module {
 public:
  ParamList Parameters() const override { return {}; }
  size_t NumParamTensors() const override { return 0; }
  ag::Variable ForwardWith(const ag::Variable& x, const ParamList&,
                           size_t*) const override {
    return ag::Tanh(x);
  }
};

class SoftmaxLayer : public Module {
 public:
  ParamList Parameters() const override { return {}; }
  size_t NumParamTensors() const override { return 0; }
  ag::Variable ForwardWith(const ag::Variable& x, const ParamList&,
                           size_t*) const override {
    return ag::Softmax(x);
  }
};

/// \brief Inverted dropout; identity in eval mode.
class Dropout : public Module {
 public:
  /// \brief Drops activations with probability `p` during training.
  Dropout(float p, Rng* rng);

  ParamList Parameters() const override { return {}; }
  size_t NumParamTensors() const override { return 0; }
  ag::Variable ForwardWith(const ag::Variable& x, const ParamList&,
                           size_t*) const override;
  void SetTraining(bool training) override { training_ = training; }

 private:
  float p_;
  Rng* rng_;
  bool training_ = true;
};

/// \brief Builds a multi-layer perceptron: Linear(+act) per hidden layer, then
/// a final Linear without activation.
std::unique_ptr<Sequential> MakeMlp(int64_t in, const std::vector<int64_t>& hidden,
                                    int64_t out, Rng* rng, bool relu = true);

}  // namespace nn
}  // namespace metadpa

#endif  // METADPA_NN_LAYERS_H_
