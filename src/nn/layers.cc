#include "nn/layers.h"

#include <cmath>

#include "tensor/ops.h"

namespace metadpa {
namespace nn {
namespace {

Tensor InitWeight(int64_t in, int64_t out, Rng* rng, Init init) {
  switch (init) {
    case Init::kXavierUniform: {
      const float bound = std::sqrt(6.0f / static_cast<float>(in + out));
      return Tensor::RandUniform({in, out}, rng, -bound, bound);
    }
    case Init::kHeNormal: {
      const float stddev = std::sqrt(2.0f / static_cast<float>(in));
      return Tensor::RandNormal({in, out}, rng, 0.0f, stddev);
    }
    case Init::kZeros:
      return Tensor::Zeros({in, out});
  }
  return Tensor::Zeros({in, out});
}

}  // namespace

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng, Init init)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(InitWeight(in_features, out_features, rng, init), /*requires_grad=*/true),
      bias_(Tensor::Zeros({1, out_features}), /*requires_grad=*/true) {}

ParamList Linear::Parameters() const { return {weight_, bias_}; }

ag::Variable Linear::ForwardWith(const ag::Variable& x, const ParamList& params,
                                 size_t* cursor) const {
  MDPA_CHECK_LE(*cursor + 2, params.size());
  const ag::Variable& w = params[*cursor];
  const ag::Variable& b = params[*cursor + 1];
  *cursor += 2;
  MDPA_CHECK_EQ(x.shape().back(), in_features_)
      << "Linear input width mismatch: " << ShapeToString(x.shape());
  return ag::Linear(x, w, b);
}

Dropout::Dropout(float p, Rng* rng) : p_(p), rng_(rng) {
  MDPA_CHECK_GE(p, 0.0f);
  MDPA_CHECK_LT(p, 1.0f);
}

ag::Variable Dropout::ForwardWith(const ag::Variable& x, const ParamList&,
                                  size_t*) const {
  if (!training_ || p_ == 0.0f) return x;
  Tensor mask(x.shape());
  const float scale = 1.0f / (1.0f - p_);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.at(i) = rng_->Bernoulli(p_) ? 0.0f : scale;
  }
  return ag::Mul(x, ag::Constant(std::move(mask)));
}

std::unique_ptr<Sequential> MakeMlp(int64_t in, const std::vector<int64_t>& hidden,
                                    int64_t out, Rng* rng, bool relu) {
  auto mlp = std::make_unique<Sequential>();
  int64_t cur = in;
  for (int64_t h : hidden) {
    mlp->Add(std::make_unique<Linear>(cur, h, rng,
                                      relu ? Init::kHeNormal : Init::kXavierUniform));
    if (relu) {
      mlp->Add(std::make_unique<ReluLayer>());
    } else {
      mlp->Add(std::make_unique<TanhLayer>());
    }
    cur = h;
  }
  mlp->Add(std::make_unique<Linear>(cur, out, rng, Init::kXavierUniform));
  return mlp;
}

}  // namespace nn
}  // namespace metadpa
